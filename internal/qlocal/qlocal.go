// Package qlocal reconstructs the quantum-scheduled uniprocessor
// primitives of Anderson, Jain & Ott [1] that the paper's Fig. 5 and
// Fig. 7 algorithms consume: Compare-and-Swap (Q-C&S), Fetch-and-
// Increment (Q-F&I), and Load, all implemented from reads and writes
// only, linearizable and wait-free for the processes of one priority
// level on one processor (which are quantum-scheduled with respect to
// one another). Processes at other priority levels may read the object
// with a single register read (WeakRead/Hint), which is the property
// Fig. 5 relies on ("a read is performed by simply reading one shared
// variable").
//
// # Construction
//
// The overview of [1]'s algorithm (its Appendix C) is not part of the
// available paper text, so this package is a reconstruction that
// preserves the interface and the reads/writes-only restriction. State
// changes form a chain of one-shot consensus cells (the paper's Fig. 3
// algorithm, package unicons): cell k decides which operation becomes
// the k-th state transition. A proposal packs (proposer, value), so the
// decided cell simultaneously names the winner and the k-th value;
// losers deterministically republish the decided value to Val[k], making
// blind helper writes safe (all writers write the same word). A packed
// (seq, value) hint register Cur gives other levels a one-statement
// read.
//
// Wait-freedom: a process loses a cell only when another same-level
// process decided it, which (same level, same processor) requires either
// a quantum preemption of the loser or a process frozen mid-operation
// from before the loser began. With quantum Q ≥ MinQuantum the number of
// rounds per operation is bounded by O(1 + same-level preemptions +
// frozen peers) ≤ O(M); see DESIGN.md for the deviation from [1]'s
// constant-time claim.
//
// Safety (linearizability) requires only Q ≥ unicons.MinQuantum, the
// premise of the underlying consensus cells.
//
// The chain uses an idealized unbounded cell array (grown by the runtime
// between atomic statements, never recycled); the paper's bounded-tag
// memory management from [2] is implemented at the Fig. 5 layer.
package qlocal

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/unicons"
)

// MinQuantum is the smallest quantum for which operations are
// linearizable: the premise of the underlying Fig. 3 cells.
const MinQuantum = unicons.MinQuantum

// RecommendedQuantum bounds every operation to at most three decision
// rounds beyond frozen-peer interference (each round is ≤ ~16
// statements, so at most one same-level preemption can hit a round).
const RecommendedQuantum = 32

// MaxValue is the largest storable value: values occupy the low 32 bits
// of packed words.
const MaxValue = 1<<32 - 1

// Object is a linearizable wait-free single-word object shared by the
// processes of one priority level on one processor. Construct with New;
// mutate with CAS, FetchInc, and Store; read with Load (same level) or
// WeakRead/Hint (any level).
type Object struct {
	name  string
	cells []*unicons.Object // cells[k] decides transition k (index 0 unused)
	vals  []*mem.Reg        // vals[k] holds the k-th value (vals[0] = initial)
	cur   *mem.Reg          // packed (seq, value) hint
	last  map[int]int       // per-process private basis (persists across invocations)
}

// New returns an object holding initial. initial must be ≤ MaxValue.
func New(name string, initial mem.Word) *Object {
	if initial > MaxValue {
		panic(fmt.Sprintf("qlocal: initial value %d exceeds MaxValue", initial))
	}
	o := &Object{
		name:  name,
		cells: []*unicons.Object{nil},
		vals:  []*mem.Reg{mem.NewRegInit(name+".val[0]", initial)},
		cur:   mem.NewRegInit(name+".cur", packCur(0, initial)),
		last:  make(map[int]int),
	}
	return o
}

// packCur packs a (sequence, value) pair into one word.
func packCur(seq int, val mem.Word) mem.Word {
	return mem.Word(seq)<<32 | (val & MaxValue)
}

// UnpackCur splits a packed hint word into (sequence, value). It is
// exported for layers that read the Hint register directly.
func UnpackCur(w mem.Word) (seq int, val mem.Word) {
	return int(w >> 32), w & MaxValue
}

// packProp packs a (proposer, value) proposal into one word. The +1
// keeps every proposal distinct from ⊥ and from raw values.
func packProp(proposer int, val mem.Word) mem.Word {
	return mem.Word(proposer+1)<<32 | (val & MaxValue)
}

func unpackProp(w mem.Word) (proposer int, val mem.Word) {
	return int(w>>32) - 1, w & MaxValue
}

// ensure grows the chain so slot k exists. Growth happens between atomic
// statements (the unbounded-array idealization; see the package
// comment).
func (o *Object) ensure(k int) {
	//repro:bound m+1 the chain grows by at most the slots one operation can traverse: same-level interference plus the target slot (unbounded-array idealization)
	for len(o.cells) <= k {
		i := len(o.cells)
		o.cells = append(o.cells, unicons.New(fmt.Sprintf("%s.cell[%d]", o.name, i)))
		o.vals = append(o.vals, mem.NewReg(fmt.Sprintf("%s.val[%d]", o.name, i)))
	}
}

// findLatest walks the chain to the newest published slot and returns
// its index. The read of vals[j+1] = ⊥ is the linearization certificate:
// at that instant the object's value is vals[j].
func (o *Object) findLatest(c *sim.Ctx) int {
	j := o.last[c.ID()]
	if hint, _ := UnpackCur(c.Read(o.cur)); hint > j {
		j = hint
	}
	//repro:bound m slots published past the hint come from same-level deciders: at most one per quantum preemption or frozen peer (Theorem 4's argument)
	for {
		o.ensure(j + 1)
		if c.Read(o.vals[j+1]) == mem.Bottom {
			return j
		}
		j++
	}
}

// valAt reads the value published for slot j (one statement). The slot
// must be published (vals[j] ≠ ⊥); write-once stability makes the read
// safe at any later time.
func (o *Object) valAt(c *sim.Ctx, j int) mem.Word {
	v := c.Read(o.vals[j])
	if v == mem.Bottom {
		panic(fmt.Sprintf("qlocal: %s slot %d read before publication", o.name, j))
	}
	return v
}

// decide runs one decision round at slot j+1 proposing val, publishes
// the decided value, refreshes the hint, and returns the winner and the
// decided value.
func (o *Object) decide(c *sim.Ctx, j int, val mem.Word) (winner int, decided mem.Word) {
	o.ensure(j + 1)
	d := o.cells[j+1].Decide(c, packProp(c.ID(), val))
	winner, decided = unpackProp(d)
	// Helper write: every writer writes the same deterministic word, so
	// blind (possibly stale) writes are harmless.
	c.Write(o.vals[j+1], decided)
	// Hint write: may be stale after a preemption; same-level operations
	// compensate by walking forward, other levels by the Fig. 5 head-scan
	// tolerance.
	c.Write(o.cur, packCur(j+1, decided))
	o.last[c.ID()] = j + 1
	return winner, decided
}

// CAS atomically replaces old with new if the current value is old,
// returning whether it did. new must be ≤ MaxValue.
func (o *Object) CAS(c *sim.Ctx, old, new mem.Word) bool {
	if new > MaxValue {
		panic(fmt.Sprintf("qlocal: CAS new value %d exceeds MaxValue", new))
	}
	//repro:bound m a round is lost only to a same-level decider; losses are bounded by quantum preemptions plus frozen peers (Theorem 4)
	for {
		j := o.findLatest(c)
		if o.valAt(c, j) != old {
			return false
		}
		if winner, _ := o.decide(c, j, new); winner == c.ID() {
			return true
		}
		// Lost the slot to another same-level operation; retry against
		// the new state. Bounded by preemptions plus frozen peers.
	}
}

// FetchInc atomically increments the value and returns the prior value.
func (o *Object) FetchInc(c *sim.Ctx) mem.Word {
	//repro:bound m a round is lost only to a same-level decider; losses are bounded by quantum preemptions plus frozen peers (Theorem 4)
	for {
		j := o.findLatest(c)
		v := o.valAt(c, j)
		if winner, _ := o.decide(c, j, v+1); winner == c.ID() {
			return v
		}
	}
}

// Store atomically sets the value to val.
func (o *Object) Store(c *sim.Ctx, val mem.Word) {
	if val > MaxValue {
		panic(fmt.Sprintf("qlocal: Store value %d exceeds MaxValue", val))
	}
	//repro:bound m a round is lost only to a same-level decider; losses are bounded by quantum preemptions plus frozen peers (Theorem 4)
	for {
		j := o.findLatest(c)
		if winner, decided := o.decide(c, j, val); winner == c.ID() && decided == val {
			return
		}
	}
}

// Load returns the current value, linearized at its internal ⊥-read
// certificate. Only same-level processes may call Load; other levels use
// WeakRead.
func (o *Object) Load(c *sim.Ctx) mem.Word {
	j := o.findLatest(c)
	return o.valAt(c, j)
}

// WeakRead reads the hint register in a single statement, returning a
// (possibly slightly stale) sequence number and value. Any priority
// level may call it.
func (o *Object) WeakRead(c *sim.Ctx) (seq int, val mem.Word) {
	return UnpackCur(c.Read(o.cur))
}

// Hint exposes the packed (seq, value) hint register for layers that
// embed the read in their own statement accounting.
func (o *Object) Hint() *mem.Reg { return o.cur }

// Peek returns the newest published value without executing statements.
// Post-run inspection only.
func (o *Object) Peek() mem.Word {
	for j := len(o.vals) - 1; j >= 0; j-- {
		//repro:allow post-run inspection helper; scans published values after the run completes
		if v := o.vals[j].Load(); v != mem.Bottom {
			return v
		}
	}
	return mem.Bottom
}

// Ops returns the number of published state transitions. Post-run
// inspection only.
func (o *Object) Ops() int {
	n := 0
	for j := 1; j < len(o.vals); j++ {
		//repro:allow post-run inspection helper; counts published transitions after the run completes
		if o.vals[j].Load() != mem.Bottom {
			n++
		}
	}
	return n
}
