package qlocal

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

// White-box property tests for the packed-word encodings.

func TestPackCurRoundTrip(t *testing.T) {
	f := func(seq uint32, val uint32) bool {
		s := int(seq >> 1) // keep within 31 bits
		w := packCur(s, mem.Word(val))
		gotSeq, gotVal := UnpackCur(w)
		return gotSeq == s && gotVal == mem.Word(val)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackCurNeverBottom(t *testing.T) {
	f := func(seq uint16, val uint32) bool {
		return packCur(int(seq), mem.Word(val)) != mem.Bottom
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackPropRoundTrip(t *testing.T) {
	f := func(proposer uint16, val uint32) bool {
		p := int(proposer)
		w := packProp(p, mem.Word(val))
		gotP, gotV := unpackProp(w)
		return gotP == p && gotV == mem.Word(val) && w != mem.Bottom
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPackPropDistinctProposers: proposals from distinct proposers are
// distinct words even with identical values — the property CAS/F&I
// winner detection relies on.
func TestPackPropDistinctProposers(t *testing.T) {
	f := func(a, b uint16, val uint32) bool {
		if a == b {
			return true
		}
		return packProp(int(a), mem.Word(val)) != packProp(int(b), mem.Word(val))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnsureGrowth(t *testing.T) {
	o := New("g", 0)
	o.ensure(5)
	if len(o.cells) != 6 || len(o.vals) != 6 {
		t.Fatalf("cells=%d vals=%d, want 6", len(o.cells), len(o.vals))
	}
	// Idempotent.
	o.ensure(3)
	if len(o.cells) != 6 {
		t.Fatal("ensure shrank the chain")
	}
}

func TestNewRejectsHugeInitial(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range initial value")
		}
	}()
	New("bad", MaxValue+1)
}
