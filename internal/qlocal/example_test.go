package qlocal_test

import (
	"fmt"

	"repro/internal/qlocal"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Example demonstrates the level-local Q-F&I: three same-priority
// processes — quantum-scheduled with respect to one another — draw
// unique tickets from a fetch-and-increment built from reads and writes.
func Example() {
	sys := sim.New(sim.Config{
		Processors: 1,
		Quantum:    qlocal.RecommendedQuantum,
		Chooser:    sched.NewRandom(2),
	})
	ctr := qlocal.New("tickets", 0)
	tickets := make([]uint64, 3)
	for i := 0; i < 3; i++ {
		i := i
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) {
				tickets[i] = ctr.FetchInc(c)
			})
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}
	unique := tickets[0] != tickets[1] && tickets[1] != tickets[2] && tickets[0] != tickets[2]
	fmt.Println(unique, ctr.Peek())
	// Output: true 3
}
