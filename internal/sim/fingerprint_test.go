package sim_test

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
)

// fpRecorder wraps a chooser and snapshots the system fingerprint at
// every decision point, giving the test the full fingerprint trajectory
// of a run.
type fpRecorder struct {
	inner sim.Chooser
	fps   []uint64
}

func (r *fpRecorder) Pick(d sim.Decision) int {
	r.fps = append(r.fps, d.Sys.Fingerprint())
	return r.inner.Pick(d)
}

// twoWriters builds two single-processor processes that each write a
// private register several times. The final shared state is independent
// of the interleaving, which is what the commuting-order tests rely on.
func twoWriters(ch sim.Chooser, quantum int, val1 mem.Word) *sim.System {
	sys := sim.New(sim.Config{Processors: 1, Quantum: quantum, Chooser: ch})
	r0 := mem.NewReg("w0")
	r1 := mem.NewReg("w1")
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
		AddInvocation(func(c *sim.Ctx) {
			for k := 0; k < 3; k++ {
				c.Write(r0, 7)
			}
		})
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
		AddInvocation(func(c *sim.Ctx) {
			for k := 0; k < 3; k++ {
				c.Write(r1, val1)
			}
		})
	return sys
}

// TestFingerprintReplayDeterministic replays the same decision vector
// twice and requires the entire fingerprint trajectory — not just the
// final state — to be identical, and to actually evolve as statements
// execute.
func TestFingerprintReplayDeterministic(t *testing.T) {
	run := func() []uint64 {
		rec := &fpRecorder{inner: &sched.Script{Decisions: []int{0, 1, 0, 1}}}
		sys := twoWriters(rec, 2, 9)
		if err := sys.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rec.fps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trajectory lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fingerprint diverges at decision %d: %#x vs %#x", i, a[i], b[i])
		}
	}
	changed := false
	for i := 1; i < len(a); i++ {
		if a[i] != a[i-1] {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("fingerprint constant across the whole run; state changes are invisible")
	}
}

// TestFingerprintCommutingOrdersConverge runs the two-writer workload
// under maximally different interleavings (run-to-completion vs
// statement-level rotation at Quantum 0) and requires the final
// fingerprints to agree: the writes touch distinct objects, so order
// cannot matter, and the memory component is an order-independent XOR.
func TestFingerprintCommutingOrdersConverge(t *testing.T) {
	sysA := twoWriters(&sched.RunToCompletion{}, 0, 9)
	sysB := twoWriters(sched.NewRotate(), 0, 9)
	if err := sysA.Run(); err != nil {
		t.Fatalf("Run A: %v", err)
	}
	if err := sysB.Run(); err != nil {
		t.Fatalf("Run B: %v", err)
	}
	if sysA.MemFingerprint() != sysB.MemFingerprint() {
		t.Errorf("memory fingerprints differ across commuting orders: %#x vs %#x",
			sysA.MemFingerprint(), sysB.MemFingerprint())
	}
	if sysA.Fingerprint() != sysB.Fingerprint() {
		t.Errorf("system fingerprints differ across commuting orders: %#x vs %#x",
			sysA.Fingerprint(), sysB.Fingerprint())
	}
}

// TestFingerprintSeesStateChange requires runs that end in genuinely
// different shared states to end with different fingerprints.
func TestFingerprintSeesStateChange(t *testing.T) {
	sysA := twoWriters(&sched.RunToCompletion{}, 0, 9)
	sysB := twoWriters(&sched.RunToCompletion{}, 0, 10)
	if err := sysA.Run(); err != nil {
		t.Fatalf("Run A: %v", err)
	}
	if err := sysB.Run(); err != nil {
		t.Fatalf("Run B: %v", err)
	}
	if sysA.MemFingerprint() == sysB.MemFingerprint() {
		t.Error("memory fingerprint blind to a differing register value")
	}
	if sysA.Fingerprint() == sysB.Fingerprint() {
		t.Error("system fingerprint blind to a differing register value")
	}
}
