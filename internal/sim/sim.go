// Package sim implements a deterministic statement-level simulator of
// the multiprogrammed systems studied by Anderson & Moir (PODC 1999):
// N processes statically assigned to P processors, each processor
// running a hybrid scheduler that combines priority-based and
// quantum-based scheduling.
//
// # Model
//
// Execution proceeds one atomic statement at a time (the standard
// interleaving model for asynchronous shared memory). A statement is a
// shared read, a shared write, a C-consensus invocation, or an
// explicitly counted local statement. The paper measures the quantum Q
// in statements ("we find it convenient to more abstractly view a
// quantum as specifying a statement count"); so does the simulator.
//
// The per-processor hybrid schedulers enforce the paper's two axioms:
//
//   - Axiom 1 (priority-based scheduling): whenever a higher-priority
//     process on a processor is ready, it runs; lower-priority processes
//     are preempted immediately.
//   - Axiom 2 (quantum-based scheduling): a process executes at least Q
//     of its own statements between preemptions by processes of equal
//     priority, even if higher-priority processes preempt it in between;
//     the guarantee lapses when the process's current object invocation
//     terminates. A process that has not yet been preempted (within its
//     current invocation) may suffer its first preemption at any time —
//     its execution aligns arbitrarily with quantum boundaries, as the
//     paper's Preemption Axiom allows.
//
// All remaining nondeterminism — which processor advances, when thinking
// processes arrive, which equal-priority process receives the next
// quantum, and when legal preemptions actually happen — is delegated to
// a Chooser. Choosers range from seeded random schedulers to the crafted
// adversaries used in the paper's lower-bound proof and the exhaustive
// explorer in internal/check.
//
// # Mechanics
//
// Each process body runs on a runtime coroutine (iter.Pull); the kernel
// (the caller of Run) resumes exactly one process at a time, and the
// process executes exactly one atomic statement per grant before parking
// again. Control strictly alternates between kernel and process, so a
// grant is a single coroutine switch — no goroutines, channels, or
// scheduler trips — and shared accesses need no further synchronization.
//
// A System can be pooled across runs: builders that register state-reset
// hooks with OnReset make the system Reusable, and Reset restores it to
// its pre-run state (rewinding every process coroutine to the top of its
// program) so exploration replays allocate nothing.
package sim

import (
	"errors"
	"fmt"
)

// Decision describes one scheduling decision point: the set of processes
// any one of which may legally execute the next atomic statement.
// Candidates are ordered deterministically (by process ID).
type Decision struct {
	// Candidates holds the legally runnable processes; len ≥ 2 (the
	// kernel resolves singleton decisions itself) except for Decisions
	// passed to Crasher.Crashes, which are delivered at every scheduling
	// step and may have any number of candidates. The slice is only valid
	// for the duration of the call; choosers that retain it must copy.
	Candidates []*Process
	// Procs holds every registered process in ID order, including done
	// and crashed ones; fault-injecting choosers use it to crash
	// processes that are not currently candidates (e.g. a preempted
	// process mid-invocation).
	Procs []*Process
	// Step is the number of statements executed so far.
	Step int64
	// Sys is the system being scheduled. Footprint-aware choosers use it
	// to read the deterministic state fingerprint (Sys.Fingerprint).
	Sys *System
	// Since holds the accesses executed since the previous Pick call
	// (including statements the kernel granted without a decision point,
	// and crash events), oldest first. The slice is only valid for the
	// duration of the call; choosers that retain it must copy.
	Since []Access
}

// Independent reports whether candidates i and j's next statements
// commute: executing them in either order reaches the same system
// state, so a partial-order-reducing explorer need not branch on their
// relative order. The relation is deliberately conservative:
//
//   - both candidates must be parked mid-invocation with known next
//     footprints (arrivals never commute: they change scheduler state
//     and their first access is unknown until granted);
//   - the footprints must commute (distinct objects, or two reads of
//     the same object; consensus invocations of the same object never
//     commute — the first invocation decides);
//   - the candidates must run on different processors, or the quantum
//     must be 0: with Q > 0, ordering two same-processor grants decides
//     who preempts whom and therefore who holds quantum protection.
//
// Diagnostic counters (Process.Preemptions) are outside the relation:
// no explorer verdict observes them.
func (d Decision) Independent(i, j int) bool {
	p, q := d.Candidates[i], d.Candidates[j]
	pf, pok := p.NextFootprint()
	qf, qok := q.NextFootprint()
	if !pok || !qok {
		return false
	}
	if p.Processor() == q.Processor() && d.Sys.Quantum() > 0 {
		return false
	}
	return pf.Commutes(qf)
}

// PickAbort is the sentinel a Chooser may return from Pick to terminate
// the run at this decision point: the kernel unwinds every process and
// Run returns ErrPickAbort. Reduction-aware explorers use it to cut off
// schedules whose continuations are provably covered elsewhere.
const PickAbort = -1

// Chooser resolves scheduling nondeterminism. Pick must return an index
// into d.Candidates, or PickAbort to terminate the run.
type Chooser interface {
	Pick(d Decision) int
}

// Crasher is an optional Chooser extension implementing crash-stop
// fault injection. Before every scheduling step the kernel invites the
// chooser to halt processes permanently: a crashed process never
// executes another statement, its unfinished invocation stays
// unfinished, and the scheduler treats it as departed — its quantum
// protection and priority claims lapse without a preemption event, so
// Axiom 1/2 accounting for the survivors is unaffected. Victims that
// are already done or crashed are ignored; victims from a different
// System are a programming error (panic).
//
// A chooser wrapper that implements Crasher only by delegation may
// additionally implement CrashesArmed() bool; when it reports false the
// kernel skips the per-step Crashes call for the whole run.
type Crasher interface {
	Chooser
	// Crashes returns the processes to crash before this scheduling
	// step. d.Candidates is the pre-crash candidate set; d.Procs lists
	// all processes.
	Crashes(d Decision) []*Process
}

// crashArmed is the optional Crasher refinement consulted once per Run:
// wrappers whose inner chooser decides crash capability implement it so
// non-crashing runs pay no per-step Crashes overhead.
type crashArmed interface {
	CrashesArmed() bool
}

// ChooserFunc adapts a function to the Chooser interface.
type ChooserFunc func(d Decision) int

// Pick implements Chooser.
func (f ChooserFunc) Pick(d Decision) int { return f(d) }

// FirstChooser always picks the first (lowest-ID) candidate. It yields a
// deterministic, preemption-averse schedule: a process runs until its
// invocation ends unless a lower-ID process arrives at equal priority.
type FirstChooser struct{}

// Pick implements Chooser.
func (FirstChooser) Pick(Decision) int { return 0 }

// Config parameterizes a simulated system.
type Config struct {
	// Processors is the number of processors P (≥ 1).
	Processors int
	// Quantum is the scheduling quantum Q in atomic statements (≥ 0).
	// Q = 0 means equal-priority preemptions may occur at every
	// statement boundary (a purely priority-scheduled system).
	Quantum int
	// Chooser resolves nondeterminism; nil defaults to FirstChooser.
	Chooser Chooser
	// MaxSteps bounds the total number of statements executed; the run
	// fails with ErrStepLimit when exceeded. 0 defaults to 1<<22.
	MaxSteps int64
	// Observer, if non-nil, receives statement and scheduling events.
	Observer Observer
}

// Errors returned by Run.
var (
	// ErrStepLimit reports that the run exceeded Config.MaxSteps. Under
	// an unfair chooser this is how non-termination manifests.
	ErrStepLimit = errors.New("sim: statement limit exceeded")
	// ErrRunTwice reports a second Run call on the same System without an
	// intervening Reset.
	ErrRunTwice = errors.New("sim: system already run")
	// ErrPickAbort reports that the chooser terminated the run by
	// returning PickAbort; the run is incomplete by design (a pruned
	// schedule), not failed.
	ErrPickAbort = errors.New("sim: run aborted by chooser")
)

// System is a configured multiprogrammed system: processors, processes,
// and their programs. Build one with New and AddProcess, then call Run.
// A System is not safe for concurrent use.
//
// By default a System is single-shot: a second Run returns ErrRunTwice.
// Builders that register OnReset hooks restoring every shared object and
// output buffer to its initial state make the system reusable: Reset +
// Run replays the identical workload without reallocating processes,
// coroutines, or kernel buffers.
type System struct {
	cfg     Config
	procs   []*Process
	byProc  [][]*Process // processes per processor
	holders [][]*Process // per processor, indexed by priority; nil = free
	steps   int64
	ran     bool
	sealed  bool // set at first Run: the process/program set is frozen
	failure error

	resetHooks []func()

	// candBuf is the reusable candidate buffer candidates() fills each
	// scheduling step.
	candBuf []*Process

	// memFP is the incremental memory-state fingerprint: the XOR of
	// every shared object's StateHash, updated by the Ctx accessors as
	// objects change. Order-independent by construction, so equal memory
	// states fingerprint equally no matter how they were reached.
	memFP uint64
	// procFP is the incremental process-state fingerprint: the XOR of
	// every process's cached contribution (see fingerprint.go). Kernel
	// mutations mark processes dirty; Fingerprint folds deltas in
	// lazily.
	procFP uint64
	// since accumulates executed accesses between decision points for
	// Decision.Since.
	since []Access
}

// New returns an empty system with the given configuration.
func New(cfg Config) *System {
	if cfg.Processors < 1 {
		panic(fmt.Sprintf("sim: need >= 1 processor, got %d", cfg.Processors))
	}
	if cfg.Quantum < 0 {
		panic(fmt.Sprintf("sim: negative quantum %d", cfg.Quantum))
	}
	if cfg.Chooser == nil {
		cfg.Chooser = FirstChooser{}
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 1 << 22
	}
	return &System{
		cfg:     cfg,
		byProc:  make([][]*Process, cfg.Processors),
		holders: make([][]*Process, cfg.Processors),
	}
}

// ProcSpec describes a process to add to a system.
type ProcSpec struct {
	// Name is a diagnostic label; defaults to "p<ID>".
	Name string
	// Processor is the processor index in [0, Config.Processors).
	Processor int
	// Priority is the process's priority, 1..V with V highest, matching
	// the paper's convention. Must be ≥ 1.
	Priority int
}

// AddProcess registers a process. Its program is the sequence of object
// invocations added with Process.AddInvocation; between invocations the
// process is "thinking" and arrives when the scheduler (Chooser) elects.
func (s *System) AddProcess(spec ProcSpec) *Process {
	if s.sealed {
		panic("sim: AddProcess after Run")
	}
	if spec.Processor < 0 || spec.Processor >= s.cfg.Processors {
		panic(fmt.Sprintf("sim: processor %d out of range [0,%d)", spec.Processor, s.cfg.Processors))
	}
	if spec.Priority < 1 {
		panic(fmt.Sprintf("sim: priority must be >= 1, got %d", spec.Priority))
	}
	p := &Process{
		id:        len(s.procs),
		name:      spec.Name,
		processor: spec.Processor,
		pri:       spec.Priority,
		origPri:   spec.Priority,
		sys:       s,
	}
	p.ctx = &Ctx{p: p}
	if p.name == "" {
		p.name = fmt.Sprintf("p%d", p.id)
	}
	s.procs = append(s.procs, p)
	s.byProc[spec.Processor] = append(s.byProc[spec.Processor], p)
	return p
}

// OnReset registers a hook Reset runs after clearing kernel and process
// state. Builders use hooks to restore shared objects and output buffers
// to their initial values; registering any hook marks the system
// Reusable. Hooks run in registration order.
func (s *System) OnReset(hook func()) {
	if hook == nil {
		panic("sim: nil OnReset hook")
	}
	s.resetHooks = append(s.resetHooks, hook)
}

// Reusable reports whether the builder declared the system safe to rerun
// after Reset (it registered at least one OnReset hook).
func (s *System) Reusable() bool { return len(s.resetHooks) > 0 }

// Reset rewinds the system to its pre-run state so Run may be called
// again: kernel counters and buffers clear, every process returns to the
// top of its program (same invocations, original priority), and the
// registered OnReset hooks restore shared state. The chooser is not
// touched — callers swap or reset it themselves.
//
// Reset must not be called while a Run is in progress; after a panic
// escaped Run (e.g. out of a chooser), discard the System instead of
// resetting it — process coroutines may be parked mid-invocation.
func (s *System) Reset() {
	s.steps = 0
	s.ran = false
	s.failure = nil
	s.memFP = 0
	s.procFP = 0
	s.since = s.since[:0]
	for i := range s.holders {
		hs := s.holders[i]
		for j := range hs {
			hs[j] = nil
		}
	}
	for _, p := range s.procs {
		p.reset()
	}
	for _, h := range s.resetHooks {
		h()
	}
}

// Close tears down the process coroutines. A closed system cannot Run
// again; Close is safe to call at any point, including after a panic
// escaped Run with coroutines parked mid-invocation.
func (s *System) Close() {
	for _, p := range s.procs {
		if p.stop != nil {
			p.stop()
		}
	}
}

// Steps returns the number of statements executed so far.
func (s *System) Steps() int64 { return s.steps }

// CrashedCount returns how many processes were halted by crash-stop
// faults during the run.
func (s *System) CrashedCount() int {
	n := 0
	for _, p := range s.procs {
		if p.crashed {
			n++
		}
	}
	return n
}

// Processes returns the registered processes in ID order. The returned
// slice must not be modified.
func (s *System) Processes() []*Process { return s.procs }

// Quantum returns the configured scheduling quantum Q.
func (s *System) Quantum() int { return s.cfg.Quantum }

// NumProcessors returns the configured processor count P.
func (s *System) NumProcessors() int { return s.cfg.Processors }
