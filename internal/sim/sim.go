// Package sim implements a deterministic statement-level simulator of
// the multiprogrammed systems studied by Anderson & Moir (PODC 1999):
// N processes statically assigned to P processors, each processor
// running a hybrid scheduler that combines priority-based and
// quantum-based scheduling.
//
// # Model
//
// Execution proceeds one atomic statement at a time (the standard
// interleaving model for asynchronous shared memory). A statement is a
// shared read, a shared write, a C-consensus invocation, or an
// explicitly counted local statement. The paper measures the quantum Q
// in statements ("we find it convenient to more abstractly view a
// quantum as specifying a statement count"); so does the simulator.
//
// The per-processor hybrid schedulers enforce the paper's two axioms:
//
//   - Axiom 1 (priority-based scheduling): whenever a higher-priority
//     process on a processor is ready, it runs; lower-priority processes
//     are preempted immediately.
//   - Axiom 2 (quantum-based scheduling): a process executes at least Q
//     of its own statements between preemptions by processes of equal
//     priority, even if higher-priority processes preempt it in between;
//     the guarantee lapses when the process's current object invocation
//     terminates. A process that has not yet been preempted (within its
//     current invocation) may suffer its first preemption at any time —
//     its execution aligns arbitrarily with quantum boundaries, as the
//     paper's Preemption Axiom allows.
//
// All remaining nondeterminism — which processor advances, when thinking
// processes arrive, which equal-priority process receives the next
// quantum, and when legal preemptions actually happen — is delegated to
// a Chooser. Choosers range from seeded random schedulers to the crafted
// adversaries used in the paper's lower-bound proof and the exhaustive
// explorer in internal/check.
//
// # Mechanics
//
// Each process is a goroutine; a single kernel goroutine (the caller of
// Run) hands a baton to one process at a time. The process executes
// exactly one atomic statement per grant and yields. Because the kernel
// blocks until the statement completes, shared accesses need no further
// synchronization.
package sim

import (
	"errors"
	"fmt"
)

// Decision describes one scheduling decision point: the set of processes
// any one of which may legally execute the next atomic statement.
// Candidates are ordered deterministically (by process ID).
type Decision struct {
	// Candidates holds the legally runnable processes; len ≥ 2 (the
	// kernel resolves singleton decisions itself) except for Decisions
	// passed to Crasher.Crashes, which are delivered at every scheduling
	// step and may have any number of candidates.
	Candidates []*Process
	// Procs holds every registered process in ID order, including done
	// and crashed ones; fault-injecting choosers use it to crash
	// processes that are not currently candidates (e.g. a preempted
	// process mid-invocation).
	Procs []*Process
	// Step is the number of statements executed so far.
	Step int64
	// Sys is the system being scheduled. Footprint-aware choosers use it
	// to read the deterministic state fingerprint (Sys.Fingerprint).
	Sys *System
	// Since holds the accesses executed since the previous Pick call
	// (including statements the kernel granted without a decision point,
	// and crash events), oldest first. The slice is only valid for the
	// duration of the call; choosers that retain it must copy.
	Since []Access
}

// Independent reports whether candidates i and j's next statements
// commute: executing them in either order reaches the same system
// state, so a partial-order-reducing explorer need not branch on their
// relative order. The relation is deliberately conservative:
//
//   - both candidates must be parked mid-invocation with known next
//     footprints (arrivals never commute: they change scheduler state
//     and their first access is unknown until granted);
//   - the footprints must commute (distinct objects, or two reads of
//     the same object; consensus invocations of the same object never
//     commute — the first invocation decides);
//   - the candidates must run on different processors, or the quantum
//     must be 0: with Q > 0, ordering two same-processor grants decides
//     who preempts whom and therefore who holds quantum protection.
//
// Diagnostic counters (Process.Preemptions) are outside the relation:
// no explorer verdict observes them.
func (d Decision) Independent(i, j int) bool {
	p, q := d.Candidates[i], d.Candidates[j]
	pf, pok := p.NextFootprint()
	qf, qok := q.NextFootprint()
	if !pok || !qok {
		return false
	}
	if p.Processor() == q.Processor() && d.Sys.Quantum() > 0 {
		return false
	}
	return pf.Commutes(qf)
}

// PickAbort is the sentinel a Chooser may return from Pick to terminate
// the run at this decision point: the kernel unwinds every process and
// Run returns ErrPickAbort. Reduction-aware explorers use it to cut off
// schedules whose continuations are provably covered elsewhere.
const PickAbort = -1

// Chooser resolves scheduling nondeterminism. Pick must return an index
// into d.Candidates, or PickAbort to terminate the run.
type Chooser interface {
	Pick(d Decision) int
}

// Crasher is an optional Chooser extension implementing crash-stop
// fault injection. Before every scheduling step the kernel invites the
// chooser to halt processes permanently: a crashed process never
// executes another statement, its unfinished invocation stays
// unfinished, and the scheduler treats it as departed — its quantum
// protection and priority claims lapse without a preemption event, so
// Axiom 1/2 accounting for the survivors is unaffected. Victims that
// are already done or crashed are ignored; victims from a different
// System are a programming error (panic).
type Crasher interface {
	Chooser
	// Crashes returns the processes to crash before this scheduling
	// step. d.Candidates is the pre-crash candidate set; d.Procs lists
	// all processes.
	Crashes(d Decision) []*Process
}

// ChooserFunc adapts a function to the Chooser interface.
type ChooserFunc func(d Decision) int

// Pick implements Chooser.
func (f ChooserFunc) Pick(d Decision) int { return f(d) }

// FirstChooser always picks the first (lowest-ID) candidate. It yields a
// deterministic, preemption-averse schedule: a process runs until its
// invocation ends unless a lower-ID process arrives at equal priority.
type FirstChooser struct{}

// Pick implements Chooser.
func (FirstChooser) Pick(Decision) int { return 0 }

// Config parameterizes a simulated system.
type Config struct {
	// Processors is the number of processors P (≥ 1).
	Processors int
	// Quantum is the scheduling quantum Q in atomic statements (≥ 0).
	// Q = 0 means equal-priority preemptions may occur at every
	// statement boundary (a purely priority-scheduled system).
	Quantum int
	// Chooser resolves nondeterminism; nil defaults to FirstChooser.
	Chooser Chooser
	// MaxSteps bounds the total number of statements executed; the run
	// fails with ErrStepLimit when exceeded. 0 defaults to 1<<22.
	MaxSteps int64
	// Observer, if non-nil, receives statement and scheduling events.
	Observer Observer
}

// Errors returned by Run.
var (
	// ErrStepLimit reports that the run exceeded Config.MaxSteps. Under
	// an unfair chooser this is how non-termination manifests.
	ErrStepLimit = errors.New("sim: statement limit exceeded")
	// ErrRunTwice reports a second Run call on the same System.
	ErrRunTwice = errors.New("sim: system already run")
	// ErrPickAbort reports that the chooser terminated the run by
	// returning PickAbort; the run is incomplete by design (a pruned
	// schedule), not failed.
	ErrPickAbort = errors.New("sim: run aborted by chooser")
)

// System is a configured multiprogrammed system: processors, processes,
// and their programs. Build one with New and AddProcess, then call Run
// exactly once. A System is not safe for concurrent use.
type System struct {
	cfg     Config
	procs   []*Process
	byProc  [][]*Process // processes per processor
	holders []map[int]*Process
	steps   int64
	ran     bool
	failure error

	// memFP is the incremental memory-state fingerprint: the XOR of
	// every shared object's StateHash, updated by the Ctx accessors as
	// objects change. Order-independent by construction, so equal memory
	// states fingerprint equally no matter how they were reached.
	memFP uint64
	// since accumulates executed accesses between decision points for
	// Decision.Since.
	since []Access
}

// New returns an empty system with the given configuration.
func New(cfg Config) *System {
	if cfg.Processors < 1 {
		panic(fmt.Sprintf("sim: need >= 1 processor, got %d", cfg.Processors))
	}
	if cfg.Quantum < 0 {
		panic(fmt.Sprintf("sim: negative quantum %d", cfg.Quantum))
	}
	if cfg.Chooser == nil {
		cfg.Chooser = FirstChooser{}
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 1 << 22
	}
	s := &System{
		cfg:     cfg,
		byProc:  make([][]*Process, cfg.Processors),
		holders: make([]map[int]*Process, cfg.Processors),
	}
	for i := range s.holders {
		s.holders[i] = make(map[int]*Process)
	}
	return s
}

// ProcSpec describes a process to add to a system.
type ProcSpec struct {
	// Name is a diagnostic label; defaults to "p<ID>".
	Name string
	// Processor is the processor index in [0, Config.Processors).
	Processor int
	// Priority is the process's priority, 1..V with V highest, matching
	// the paper's convention. Must be ≥ 1.
	Priority int
}

// AddProcess registers a process. Its program is the sequence of object
// invocations added with Process.AddInvocation; between invocations the
// process is "thinking" and arrives when the scheduler (Chooser) elects.
func (s *System) AddProcess(spec ProcSpec) *Process {
	if s.ran {
		panic("sim: AddProcess after Run")
	}
	if spec.Processor < 0 || spec.Processor >= s.cfg.Processors {
		panic(fmt.Sprintf("sim: processor %d out of range [0,%d)", spec.Processor, s.cfg.Processors))
	}
	if spec.Priority < 1 {
		panic(fmt.Sprintf("sim: priority must be >= 1, got %d", spec.Priority))
	}
	p := &Process{
		id:         len(s.procs),
		name:       spec.Name,
		processor:  spec.Processor,
		pri:        spec.Priority,
		sys:        s,
		toKernel:   make(chan yieldMsg),
		fromKernel: make(chan grantKind),
	}
	if p.name == "" {
		p.name = fmt.Sprintf("p%d", p.id)
	}
	s.procs = append(s.procs, p)
	s.byProc[spec.Processor] = append(s.byProc[spec.Processor], p)
	return p
}

// Steps returns the number of statements executed so far.
func (s *System) Steps() int64 { return s.steps }

// CrashedCount returns how many processes were halted by crash-stop
// faults during the run.
func (s *System) CrashedCount() int {
	n := 0
	for _, p := range s.procs {
		if p.crashed {
			n++
		}
	}
	return n
}

// Processes returns the registered processes in ID order. The returned
// slice must not be modified.
func (s *System) Processes() []*Process { return s.procs }

// Quantum returns the configured scheduling quantum Q.
func (s *System) Quantum() int { return s.cfg.Quantum }

// NumProcessors returns the configured processor count P.
func (s *System) NumProcessors() int { return s.cfg.Processors }
