package sim

import (
	"errors"
	"fmt"

	"repro/internal/mem"
)

// Run executes the system to completion: it repeatedly grants one atomic
// statement to a legally schedulable process until all programs finish.
// The schedule honors Axiom 1 (priority) and Axiom 2 (quantum) exactly;
// remaining freedom goes to the configured Chooser.
//
// Run returns ErrStepLimit if Config.MaxSteps is exceeded, or an error
// if any process program panicked. It may be called again only after
// Reset.
func (s *System) Run() error {
	if s.ran {
		return ErrRunTwice
	}
	s.ran = true
	s.sealed = true

	// Collect each process's initial yield (thinking, or done for an
	// empty program) by resuming its coroutine to the first park. After
	// this point the invariant holds: every non-done process is parked
	// awaiting a grant.
	for _, p := range s.procs {
		k, fp := p.resume(grantRun)
		s.consume(p, k, fp)
	}

	crasher, _ := s.cfg.Chooser.(Crasher)
	if armed, ok := s.cfg.Chooser.(crashArmed); ok && !armed.CrashesArmed() {
		crasher = nil
	}
	for {
		cands := s.candidates()
		if crasher != nil && !s.allDone() {
			if victims := crasher.Crashes(Decision{Candidates: cands, Procs: s.procs, Step: s.steps, Sys: s, Since: s.since}); len(victims) > 0 {
				for _, v := range victims {
					s.crash(v)
				}
				cands = s.candidates()
			}
		}
		if len(cands) == 0 {
			if s.allDone() {
				break
			}
			return errors.New("sim: no schedulable process (internal invariant violated)")
		}
		if s.steps >= s.cfg.MaxSteps {
			s.abortAll()
			return fmt.Errorf("%w (limit %d)", ErrStepLimit, s.cfg.MaxSteps)
		}
		idx := 0
		if len(cands) > 1 {
			idx = s.cfg.Chooser.Pick(Decision{Candidates: cands, Procs: s.procs, Step: s.steps, Sys: s, Since: s.since})
			s.since = s.since[:0]
			if idx == PickAbort {
				s.abortAll()
				return ErrPickAbort
			}
			if idx < 0 || idx >= len(cands) {
				s.abortAll()
				return fmt.Errorf("sim: chooser picked %d of %d candidates", idx, len(cands))
			}
		}
		s.grant(cands[idx])
	}

	var errs []error
	for _, p := range s.procs {
		if p.err != nil {
			errs = append(errs, p.err)
		}
	}
	return errors.Join(errs...)
}

func (s *System) allDone() bool {
	for _, p := range s.procs {
		if p.state != stateDone && p.state != stateCrashed {
			return false
		}
	}
	return true
}

// crash halts process p permanently (a crash-stop fault). The victim's
// coroutine is unwound, its quantum protection lapses, and its priority
// level's holder slot frees — it departs, it is not preempted, so no
// SchedPreempt is emitted and no survivor gains quantum protection from
// the crash. Done or already-crashed victims are ignored.
func (s *System) crash(p *Process) {
	if p.sys != s {
		panic(fmt.Sprintf("sim: crash of foreign process %s", p.name))
	}
	if p.state == stateDone || p.state == stateCrashed {
		return
	}
	s.clearHolder(p)
	p.protected = false
	// A crash is dependent with everything: record it in the access log
	// so footprint-aware choosers never commute statements across it.
	s.since = append(s.since, Access{Proc: p.id, Processor: p.processor, Global: true})
	s.observeSched(SchedEvent{Kind: SchedCrash, Proc: p, Step: s.steps})
	// Unwind the coroutine: a non-done process is parked awaiting a
	// grant, and an aborted pass parks exactly once more with yieldDone.
	p.resume(grantAbort)
	p.state = stateCrashed
	p.crashed = true
	p.fpDirty = true
}

// candidates returns, in deterministic (process ID) order, every process
// that may legally execute the next atomic statement under Axioms 1–2.
// The returned slice is the system's reusable candidate buffer: valid
// until the next candidates call, never retained by choosers.
func (s *System) candidates() []*Process {
	s.candBuf = s.candBuf[:0]
	for i := range s.byProc {
		s.processorCandidates(i)
	}
	return s.candBuf
}

// processorCandidates appends the schedulable set on processor i to
// s.candBuf:
//
//   - Axiom 1: only processes at the maximal ready priority may run;
//     thinking processes of strictly higher priority may arrive (and
//     thereby preempt) at any moment.
//   - Axiom 2: if the current quantum holder at the maximal ready level
//     is protected (mid-guaranteed-quantum), it is the only runnable
//     candidate at that level.
//   - Thinking processes at the maximal ready level may arrive and run
//     only if no protected holder blocks the level; arrivals at lower
//     priorities are unobservable until they could run, so they are not
//     candidates.
func (s *System) processorCandidates(i int) {
	maxReady := 0
	for _, p := range s.byProc[i] {
		if p.state == stateRunnable && p.pri > maxReady {
			maxReady = p.pri
		}
	}
	if maxReady == 0 {
		for _, p := range s.byProc[i] {
			if p.state == stateThinking {
				s.candBuf = append(s.candBuf, p)
			}
		}
		return
	}
	holder := s.holder(i, maxReady)
	blocked := holder != nil && holder.state == stateRunnable && holder.protected
	for _, p := range s.byProc[i] {
		switch {
		case p.state == stateRunnable && p.pri == maxReady:
			if !blocked || p == holder {
				s.candBuf = append(s.candBuf, p)
			}
		case p.state == stateThinking && p.pri > maxReady:
			s.candBuf = append(s.candBuf, p)
		case p.state == stateThinking && p.pri == maxReady && !blocked:
			s.candBuf = append(s.candBuf, p)
		}
	}
}

// holder returns the quantum-slot holder at (processor, priority), or
// nil. Holder slots live in a flat per-processor slice indexed by
// priority, grown on demand (dynamic priorities may exceed the levels
// present at AddProcess).
func (s *System) holder(proc, lvl int) *Process {
	hs := s.holders[proc]
	if lvl >= len(hs) {
		return nil
	}
	return hs[lvl]
}

func (s *System) setHolder(proc, lvl int, p *Process) {
	hs := s.holders[proc]
	for lvl >= len(hs) {
		hs = append(hs, nil)
	}
	hs[lvl] = p
	s.holders[proc] = hs
}

// clearHolder frees p's priority level's holder slot if p holds it.
func (s *System) clearHolder(p *Process) {
	hs := s.holders[p.processor]
	if p.pri < len(hs) && hs[p.pri] == p {
		hs[p.pri] = nil
	}
}

// grant lets process p execute one atomic statement, performing all
// scheduling bookkeeping (arrivals, same-priority preemptions, quantum
// protection, invocation completion).
func (s *System) grant(p *Process) {
	i, lvl := p.processor, p.pri
	arrived := p.state == stateThinking
	if arrived {
		s.observeSched(SchedEvent{Kind: SchedArrive, Proc: p, Step: s.steps})
		// The arrival statement starts the invocation: mark the process
		// runnable now so a single-statement invocation (whose next yield
		// is already thinking/done) still completes in consume.
		p.state = stateRunnable
	}
	if h := s.holder(i, lvl); h != nil && h != p && h.state == stateRunnable {
		// Same-priority preemption of the current quantum holder. Per
		// Axiom 2 the victim is guaranteed Q of its own statements once
		// it resumes (unless its invocation ends first).
		h.protected = s.cfg.Quantum > 0
		h.sinceResume = 0
		h.preemptions++
		h.fpDirty = true
		s.observeSched(SchedEvent{Kind: SchedPreempt, Proc: h, By: p, Step: s.steps})
	}
	s.setHolder(i, lvl, p)

	kind, fp := p.resume(grantRun)

	p.stmtsTotal++
	p.stmtsThisInv++
	p.sinceResume++
	if p.protected && p.sinceResume >= s.cfg.Quantum {
		p.protected = false
	}
	p.lastEvent.Step = s.steps
	s.steps++
	// Fold the executed statement into the process's observation hash
	// (its stand-in for opaque local state in System.Fingerprint) and
	// into the inter-decision access log. Arrivals and invocation
	// completions additionally change scheduler state, so they are
	// flagged dependent-with-everything.
	p.obsHash = mem.Mix(mem.Mix(mem.Mix(p.obsHash, uint64(p.lastEvent.Op)), p.lastEvent.Fp.Obj), p.lastEvent.Value)
	s.since = append(s.since, Access{
		Proc:      p.id,
		Processor: p.processor,
		Fp:        p.lastEvent.Fp,
		Global:    arrived || kind != yieldStmt,
	})
	if s.cfg.Observer != nil {
		s.cfg.Observer.OnStatement(p.lastEvent)
	}
	s.consume(p, kind, fp)
}

// consume updates kernel-side state from a process's yield.
func (s *System) consume(p *Process, kind yieldKind, fp mem.Footprint) {
	p.fpDirty = true
	switch kind {
	case yieldStmt:
		p.state = stateRunnable
		p.pending = fp
		p.pendingKnown = true
	case yieldThinking, yieldDone:
		wasRunning := p.state == stateRunnable
		p.pendingKnown = false
		if kind == yieldThinking {
			p.state = stateThinking
		} else {
			p.state = stateDone
		}
		if wasRunning {
			// Invocation completed: the quantum guarantee lapses and the
			// level's holder slot frees.
			p.protected = false
			p.sinceResume = 0
			s.clearHolder(p)
			if p.stmtsThisInv > p.maxInvStmts {
				p.maxInvStmts = p.stmtsThisInv
			}
			p.invStmtsLog = append(p.invStmtsLog, p.stmtsThisInv)
			p.stmtsThisInv = 0
			p.invIndex++
			s.observeSched(SchedEvent{Kind: SchedInvEnd, Proc: p, Step: s.steps})
		}
		if kind == yieldDone {
			s.observeSched(SchedEvent{Kind: SchedProcDone, Proc: p, Step: s.steps})
		}
		// Dynamic priorities (§5): a pending priority change takes
		// effect between invocations, never during one.
		if p.state == stateThinking && p.invIndex < len(p.invPri) && p.invPri[p.invIndex] > 0 {
			p.pri = p.invPri[p.invIndex]
		}
	}
}

func (s *System) observeSched(ev SchedEvent) {
	if s.cfg.Observer != nil {
		s.cfg.Observer.OnSchedule(ev)
	}
}

// abortAll unwinds every live process coroutine. It relies on the kernel
// invariant that every non-done process is parked awaiting a grant.
// Crashed processes were already unwound by crash.
func (s *System) abortAll() {
	for _, p := range s.procs {
		for p.state != stateDone && p.state != stateCrashed {
			kind, _ := p.resume(grantAbort)
			if kind == yieldDone {
				p.state = stateDone
				p.fpDirty = true
			}
		}
	}
}
