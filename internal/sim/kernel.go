package sim

import (
	"errors"
	"fmt"

	"repro/internal/mem"
)

// Run executes the system to completion: it launches every process and
// repeatedly grants one atomic statement to a legally schedulable
// process until all programs finish. The schedule honors Axiom 1
// (priority) and Axiom 2 (quantum) exactly; remaining freedom goes to
// the configured Chooser.
//
// Run returns ErrStepLimit if Config.MaxSteps is exceeded, or an error
// if any process program panicked. It must be called exactly once.
func (s *System) Run() error {
	if s.ran {
		return ErrRunTwice
	}
	s.ran = true

	for _, p := range s.procs {
		//repro:allow goroutine baton-passing process shell; the kernel serializes every grant so scheduling stays deterministic
		go p.run()
	}
	// Collect each process's initial yield (thinking, or done for an
	// empty program). After this point the invariant holds: every
	// non-done process is blocked receiving from its fromKernel channel.
	for _, p := range s.procs {
		s.consume(p, <-p.toKernel)
	}

	crasher, _ := s.cfg.Chooser.(Crasher)
	for {
		cands := s.candidates()
		if crasher != nil && !s.allDone() {
			if victims := crasher.Crashes(Decision{Candidates: cands, Procs: s.procs, Step: s.steps, Sys: s, Since: s.since}); len(victims) > 0 {
				for _, v := range victims {
					s.crash(v)
				}
				cands = s.candidates()
			}
		}
		if len(cands) == 0 {
			if s.allDone() {
				break
			}
			return errors.New("sim: no schedulable process (internal invariant violated)")
		}
		if s.steps >= s.cfg.MaxSteps {
			s.abortAll()
			return fmt.Errorf("%w (limit %d)", ErrStepLimit, s.cfg.MaxSteps)
		}
		idx := 0
		if len(cands) > 1 {
			idx = s.cfg.Chooser.Pick(Decision{Candidates: cands, Procs: s.procs, Step: s.steps, Sys: s, Since: s.since})
			s.since = s.since[:0]
			if idx == PickAbort {
				s.abortAll()
				return ErrPickAbort
			}
			if idx < 0 || idx >= len(cands) {
				s.abortAll()
				return fmt.Errorf("sim: chooser picked %d of %d candidates", idx, len(cands))
			}
		}
		s.grant(cands[idx])
	}

	var errs []error
	for _, p := range s.procs {
		if p.err != nil {
			errs = append(errs, p.err)
		}
	}
	return errors.Join(errs...)
}

func (s *System) allDone() bool {
	for _, p := range s.procs {
		if p.state != stateDone && p.state != stateCrashed {
			return false
		}
	}
	return true
}

// crash halts process p permanently (a crash-stop fault). The victim's
// goroutine is unwound, its quantum protection lapses, and its priority
// level's holder slot frees — it departs, it is not preempted, so no
// SchedPreempt is emitted and no survivor gains quantum protection from
// the crash. Done or already-crashed victims are ignored.
func (s *System) crash(p *Process) {
	if p.sys != s {
		panic(fmt.Sprintf("sim: crash of foreign process %s", p.name))
	}
	if p.state == stateDone || p.state == stateCrashed {
		return
	}
	if s.holders[p.processor][p.pri] == p {
		delete(s.holders[p.processor], p.pri)
	}
	p.protected = false
	// A crash is dependent with everything: record it in the access log
	// so footprint-aware choosers never commute statements across it.
	s.since = append(s.since, Access{Proc: p.id, Processor: p.processor, Global: true})
	s.observeSched(SchedEvent{Kind: SchedCrash, Proc: p, Step: s.steps})
	// Unwind the goroutine: every non-done process is blocked receiving
	// from fromKernel, and an aborted process sends exactly one final
	// yieldDone.
	p.fromKernel <- grantAbort
	<-p.toKernel
	p.state = stateCrashed
	p.crashed = true
}

// candidates returns, in deterministic (process ID) order, every process
// that may legally execute the next atomic statement under Axioms 1–2.
func (s *System) candidates() []*Process {
	var out []*Process
	for i := range s.byProc {
		out = append(out, s.processorCandidates(i)...)
	}
	return out
}

// processorCandidates computes the schedulable set on processor i:
//
//   - Axiom 1: only processes at the maximal ready priority may run;
//     thinking processes of strictly higher priority may arrive (and
//     thereby preempt) at any moment.
//   - Axiom 2: if the current quantum holder at the maximal ready level
//     is protected (mid-guaranteed-quantum), it is the only runnable
//     candidate at that level.
//   - Thinking processes at the maximal ready level may arrive and run
//     only if no protected holder blocks the level; arrivals at lower
//     priorities are unobservable until they could run, so they are not
//     candidates.
func (s *System) processorCandidates(i int) []*Process {
	maxReady := 0
	for _, p := range s.byProc[i] {
		if p.state == stateRunnable && p.pri > maxReady {
			maxReady = p.pri
		}
	}
	var out []*Process
	if maxReady == 0 {
		for _, p := range s.byProc[i] {
			if p.state == stateThinking {
				out = append(out, p)
			}
		}
		return out
	}
	holder := s.holders[i][maxReady]
	blocked := holder != nil && holder.state == stateRunnable && holder.protected
	for _, p := range s.byProc[i] {
		switch {
		case p.state == stateRunnable && p.pri == maxReady:
			if !blocked || p == holder {
				out = append(out, p)
			}
		case p.state == stateThinking && p.pri > maxReady:
			out = append(out, p)
		case p.state == stateThinking && p.pri == maxReady && !blocked:
			out = append(out, p)
		}
	}
	return out
}

// grant lets process p execute one atomic statement, performing all
// scheduling bookkeeping (arrivals, same-priority preemptions, quantum
// protection, invocation completion).
func (s *System) grant(p *Process) {
	i, lvl := p.processor, p.pri
	arrived := p.state == stateThinking
	if arrived {
		s.observeSched(SchedEvent{Kind: SchedArrive, Proc: p, Step: s.steps})
		// The arrival statement starts the invocation: mark the process
		// runnable now so a single-statement invocation (whose next yield
		// is already thinking/done) still completes in consume.
		p.state = stateRunnable
	}
	if h := s.holders[i][lvl]; h != nil && h != p && h.state == stateRunnable {
		// Same-priority preemption of the current quantum holder. Per
		// Axiom 2 the victim is guaranteed Q of its own statements once
		// it resumes (unless its invocation ends first).
		h.protected = s.cfg.Quantum > 0
		h.sinceResume = 0
		h.preemptions++
		s.observeSched(SchedEvent{Kind: SchedPreempt, Proc: h, By: p, Step: s.steps})
	}
	s.holders[i][lvl] = p

	p.fromKernel <- grantRun
	msg := <-p.toKernel

	p.stmtsTotal++
	p.stmtsThisInv++
	p.sinceResume++
	if p.protected && p.sinceResume >= s.cfg.Quantum {
		p.protected = false
	}
	p.lastEvent.Step = s.steps
	s.steps++
	// Fold the executed statement into the process's observation hash
	// (its stand-in for opaque local state in System.Fingerprint) and
	// into the inter-decision access log. Arrivals and invocation
	// completions additionally change scheduler state, so they are
	// flagged dependent-with-everything.
	p.obsHash = mem.Mix(mem.Mix(mem.Mix(p.obsHash, uint64(p.lastEvent.Op)), p.lastEvent.Fp.Obj), p.lastEvent.Value)
	s.since = append(s.since, Access{
		Proc:      p.id,
		Processor: p.processor,
		Fp:        p.lastEvent.Fp,
		Global:    arrived || msg.kind != yieldStmt,
	})
	if s.cfg.Observer != nil {
		s.cfg.Observer.OnStatement(p.lastEvent)
	}
	s.consume(p, msg)
}

// consume updates kernel-side state from a process's yield message.
func (s *System) consume(p *Process, msg yieldMsg) {
	switch msg.kind {
	case yieldStmt:
		p.state = stateRunnable
		p.pending = msg.fp
		p.pendingKnown = true
	case yieldThinking, yieldDone:
		wasRunning := p.state == stateRunnable
		p.pendingKnown = false
		if msg.kind == yieldThinking {
			p.state = stateThinking
		} else {
			p.state = stateDone
		}
		if wasRunning {
			// Invocation completed: the quantum guarantee lapses and the
			// level's holder slot frees.
			p.protected = false
			p.sinceResume = 0
			if s.holders[p.processor][p.pri] == p {
				delete(s.holders[p.processor], p.pri)
			}
			if p.stmtsThisInv > p.maxInvStmts {
				p.maxInvStmts = p.stmtsThisInv
			}
			p.stmtsThisInv = 0
			p.invIndex++
			s.observeSched(SchedEvent{Kind: SchedInvEnd, Proc: p, Step: s.steps})
		}
		if msg.kind == yieldDone {
			s.observeSched(SchedEvent{Kind: SchedProcDone, Proc: p, Step: s.steps})
		}
		// Dynamic priorities (§5): a pending priority change takes
		// effect between invocations, never during one.
		if p.state == stateThinking && p.invIndex < len(p.invPri) && p.invPri[p.invIndex] > 0 {
			p.pri = p.invPri[p.invIndex]
		}
	}
}

func (s *System) observeSched(ev SchedEvent) {
	if s.cfg.Observer != nil {
		s.cfg.Observer.OnSchedule(ev)
	}
}

// abortAll unwinds every live process goroutine. It relies on the kernel
// invariant that every non-done process is blocked on fromKernel.
// Crashed processes were already unwound by crash.
func (s *System) abortAll() {
	for _, p := range s.procs {
		for p.state != stateDone && p.state != stateCrashed {
			p.fromKernel <- grantAbort
			msg := <-p.toKernel
			if msg.kind == yieldDone {
				p.state = stateDone
			}
		}
	}
}
