package sim_test

import (
	"errors"
	"testing"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
)

// TestAxiom2SurvivesHighPriorityPreemption pins the paper's central
// scheduling subtlety: "each process p is guaranteed to execute at least
// Q statements between preemptions by processes of equal priority, EVEN
// IF p is preempted by higher-priority processes." A high-priority
// interruption must not reset or consume the victim's quantum.
func TestAxiom2SurvivesHighPriorityPreemption(t *testing.T) {
	const q = 6
	// Chooser: let lo-A run 2 statements, then same-level preempt by
	// lo-B (1 stmt), then back to lo-A (protected, must get 6), with the
	// high-priority process arriving in the middle of lo-A's protected
	// run.
	var order []string
	step := 0
	ch := sim.ChooserFunc(func(d sim.Decision) int {
		step++
		pick := func(name string) int {
			for i, p := range d.Candidates {
				if p.Name() == name {
					return i
				}
			}
			return -1
		}
		var want string
		switch {
		case step <= 2:
			want = "loA"
		case step == 3:
			want = "loB" // same-priority preemption of loA
		case step <= 6:
			want = "loA" // loA resumes under protection
		case step == 7:
			want = "hi" // high-priority arrival mid-quantum
		default:
			want = "loA"
		}
		if i := pick(want); i >= 0 {
			return i
		}
		return 0
	})
	sys := sim.New(sim.Config{Processors: 1, Quantum: q, Chooser: ch})
	loA := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: "loA"})
	loA.AddInvocation(func(c *sim.Ctx) {
		for i := 0; i < 3*q; i++ {
			c.Local(1)
			order = append(order, "loA")
		}
	})
	loB := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: "loB"})
	loB.AddInvocation(func(c *sim.Ctx) {
		for i := 0; i < q; i++ {
			c.Local(1)
			order = append(order, "loB")
		}
	})
	hi := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 2, Name: "hi"})
	hi.AddInvocation(func(c *sim.Ctx) {
		for i := 0; i < 3; i++ {
			c.Local(1)
			order = append(order, "hi")
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Find loA's post-preemption burst: from its resumption after loB's
	// first statement, count loA statements until the next loB
	// statement. The hi interruption must not break the guarantee.
	firstB := -1
	for i, s := range order {
		if s == "loB" {
			firstB = i
			break
		}
	}
	if firstB == -1 {
		t.Fatalf("loB never ran: %v", order)
	}
	countA := 0
	for _, s := range order[firstB+1:] {
		switch s {
		case "loA":
			countA++
		case "loB":
			if countA < q {
				t.Fatalf("loA re-preempted by same level after only %d < Q=%d statements (hi interruptions must not consume the quantum): %v",
					countA, q, order)
			}
			return
		case "hi":
			// High-priority interruption: allowed at any time, must not
			// affect loA's same-priority quantum accounting.
		}
	}
}

// TestZeroQuantumIsPurePriority checks Q=0: same-priority preemption is
// legal at every statement boundary (a purely priority-scheduled
// system), and algorithms relying on the quantum are breakable while
// distinct-priority scheduling still works.
func TestZeroQuantumIsPurePriority(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 0, Chooser: sched.NewRotate()})
	var order []int
	for i := 0; i < 2; i++ {
		i := i
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) {
				for k := 0; k < 4; k++ {
					c.Local(1)
					order = append(order, i)
				}
			})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// With Q=0 and Rotate, strict alternation is legal and expected.
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1] {
			t.Fatalf("Q=0 should allow alternation at every statement: %v", order)
		}
	}
}

// TestProcessorsScheduleIndependently verifies that a protected quantum
// on one processor does not constrain scheduling on another.
func TestProcessorsScheduleIndependently(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 2, Quantum: 8, Chooser: sched.NewRotate()})
	counts := make(map[int]int)
	for proc := 0; proc < 2; proc++ {
		for j := 0; j < 2; j++ {
			id := proc*2 + j
			sys.AddProcess(sim.ProcSpec{Processor: proc, Priority: 1}).
				AddInvocation(func(c *sim.Ctx) {
					for k := 0; k < 6; k++ {
						c.Local(1)
						counts[id]++
					}
				})
		}
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for id, n := range counts {
		if n != 6 {
			t.Fatalf("process %d executed %d statements, want 6", id, n)
		}
	}
}

// TestInvocationEndReleasesProtection: protection lapses when the
// invocation terminates ("or until its object invocation terminates"),
// so a same-priority peer may run immediately after, even if fewer than
// Q statements were executed since the preemption.
func TestInvocationEndReleasesProtection(t *testing.T) {
	const q = 100 // huge quantum: only invocation end can release
	sys := sim.New(sim.Config{Processors: 1, Quantum: q, Chooser: sched.NewRotate()})
	var order []int
	a := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: "a"})
	for inv := 0; inv < 2; inv++ {
		a.AddInvocation(func(c *sim.Ctx) {
			for k := 0; k < 3; k++ {
				c.Local(1)
				order = append(order, 0)
			}
		})
	}
	b := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: "b"})
	b.AddInvocation(func(c *sim.Ctx) {
		for k := 0; k < 3; k++ {
			c.Local(1)
			order = append(order, 1)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// All three invocations complete despite Q=100 >> total statements:
	// protection cannot outlive an invocation.
	if len(order) != 9 {
		t.Fatalf("executed %d statements, want 9: %v", len(order), order)
	}
}

// TestStepLimitDuringProtection: aborting mid-protected-quantum must
// terminate cleanly (no goroutine deadlock).
func TestStepLimitDuringProtection(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 50, MaxSteps: 20, Chooser: sched.NewRotate()})
	for i := 0; i < 3; i++ {
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) {
				for {
					c.Local(1)
				}
			})
	}
	if err := sys.Run(); !errors.Is(err, sim.ErrStepLimit) {
		t.Fatalf("Run = %v, want ErrStepLimit", err)
	}
}

// TestChooserOutOfRange: a buggy chooser is reported, not crashed on.
func TestChooserOutOfRange(t *testing.T) {
	ch := sim.ChooserFunc(func(d sim.Decision) int { return len(d.Candidates) })
	sys := sim.New(sim.Config{Processors: 1, Quantum: 4, Chooser: ch})
	for i := 0; i < 2; i++ {
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) { c.Local(2) })
	}
	if err := sys.Run(); err == nil {
		t.Fatal("out-of-range chooser accepted")
	}
}

// TestHigherPriorityAlwaysFirstWhenReady: once a higher-priority process
// is mid-invocation, nothing below it may run on that processor until it
// finishes (Axiom 1), regardless of the chooser.
func TestHigherPriorityAlwaysFirstWhenReady(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		sys := sim.New(sim.Config{Processors: 1, Quantum: 4, Chooser: sched.NewRandom(seed)})
		r := mem.NewReg("r")
		var order []int
		for i, pri := range []int{1, 3, 2} {
			i := i
			sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: pri}).
				AddInvocation(func(c *sim.Ctx) {
					for k := 0; k < 4; k++ {
						c.Write(r, mem.Word(i))
						order = append(order, i)
					}
				})
		}
		if err := sys.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Statements of process 1 (priority 3) must be contiguous.
		first, last := -1, -1
		for i, v := range order {
			if v == 1 {
				if first == -1 {
					first = i
				}
				last = i
			}
		}
		if last-first != 3 {
			t.Fatalf("seed %d: priority-3 run not contiguous: %v", seed, order)
		}
	}
}
