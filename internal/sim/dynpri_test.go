package sim_test

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/unicons"
)

// TestDynamicPriorityApplies checks that AddInvocationPri changes the
// process's priority between invocations: a process boosted above a
// peer must run its boosted invocation without same-level preemption.
func TestDynamicPriorityApplies(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 2, Chooser: sched.NewRotate()})
	var order []string
	a := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: "a"})
	a.AddInvocation(func(c *sim.Ctx) {
		for i := 0; i < 4; i++ {
			c.Local(1)
			order = append(order, fmt.Sprintf("a@%d", c.Pri()))
		}
	})
	a.AddInvocationPri(3, func(c *sim.Ctx) {
		for i := 0; i < 4; i++ {
			c.Local(1)
			order = append(order, fmt.Sprintf("A@%d", c.Pri()))
		}
	})
	b := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 2, Name: "b"})
	b.AddInvocation(func(c *sim.Ctx) {
		for i := 0; i < 8; i++ {
			c.Local(1)
			order = append(order, "b")
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Invocation A (priority 3) must be contiguous: nothing outranks it.
	first := -1
	for i, s := range order {
		if s == "A@3" {
			first = i
			break
		}
	}
	if first == -1 {
		t.Fatalf("boosted invocation never ran at priority 3: %v", order)
	}
	for i := first; i < first+4; i++ {
		if order[i] != "A@3" {
			t.Fatalf("boosted invocation preempted: %v", order)
		}
	}
	// The low-priority invocation must report priority 1.
	for _, s := range order {
		if s == "a@3" || s == "A@1" {
			t.Fatalf("priority changed mid-invocation: %v", order)
		}
	}
}

// TestFig3UnderDynamicPriorities verifies the §5 claim that the Fig. 3
// consensus algorithm is correct as stated in dynamic-priority systems:
// processes change priority between repeated decides on fresh objects.
func TestFig3UnderDynamicPriorities(t *testing.T) {
	build := func(ch sim.Chooser) (*sim.System, check.Verify) {
		const n, rounds = 4, 3
		sys := sim.New(sim.Config{Processors: 1, Quantum: unicons.MinQuantum, Chooser: ch, MaxSteps: 1 << 18})
		objs := make([]*unicons.Object, rounds)
		for r := range objs {
			objs[r] = unicons.New(fmt.Sprintf("cons%d", r))
		}
		outs := make([][]mem.Word, n)
		for i := 0; i < n; i++ {
			i := i
			p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%2})
			outs[i] = make([]mem.Word, rounds)
			for r := 0; r < rounds; r++ {
				r := r
				// Rotate priorities between rounds: dynamic priorities.
				p.AddInvocationPri(1+(i+r)%3, func(c *sim.Ctx) {
					outs[i][r] = objs[r].Decide(c, mem.Word(i*10+r+1))
				})
			}
		}
		verify := func(runErr error) error {
			if runErr != nil {
				return fmt.Errorf("run failed: %w", runErr)
			}
			for r := 0; r < rounds; r++ {
				for i := 1; i < n; i++ {
					if outs[i][r] != outs[0][r] {
						return fmt.Errorf("round %d disagreement: %v", r, outs)
					}
				}
				if outs[0][r] == mem.Bottom {
					return fmt.Errorf("round %d decided ⊥", r)
				}
			}
			return nil
		}
		return sys, verify
	}
	res := check.Fuzz(build, 500, check.Options{})
	if !res.OK() {
		t.Fatalf("violation: %+v", res.First())
	}
	res = check.ExploreBudget(build, 2, check.Options{MaxSchedules: 30000})
	if !res.OK() {
		t.Fatalf("budgeted violation: %+v", res.First())
	}
}
