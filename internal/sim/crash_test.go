package sim_test

import (
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
)

// TestCrashMidInvocationHaltsProcess crashes a process between its two
// writes: the second write must never execute, the survivor must still
// finish, and the run must end cleanly.
func TestCrashMidInvocationHaltsProcess(t *testing.T) {
	aud := sim.NewAuditor(4)
	sys := sim.New(sim.Config{
		Processors: 1, Quantum: 4,
		// Victim (ID 0) crashes after 2 global statements.
		Chooser:  sched.NewCrash(sim.FirstChooser{}, sched.CrashPoint{Proc: 0, Step: 2}),
		Observer: aud,
	})
	r1, r2 := mem.NewReg("r1"), mem.NewReg("r2")
	victim := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: "victim"})
	victim.AddInvocation(func(c *sim.Ctx) {
		c.Write(r1, 1)
		c.Local(4)
		c.Write(r2, 1) // must never run
	})
	var survived bool
	survivor := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: "survivor"})
	survivor.AddInvocation(func(c *sim.Ctx) {
		c.Local(2)
		survived = true
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !victim.Crashed() || victim.Live() {
		t.Fatalf("victim crashed=%v live=%v, want true/false", victim.Crashed(), victim.Live())
	}
	if survivor.Crashed() || !survived {
		t.Fatalf("survivor crashed=%v survived=%v", survivor.Crashed(), survived)
	}
	if r2.Load() != mem.Bottom {
		t.Fatalf("crashed process's post-crash write executed: r2=%d", r2.Load())
	}
	if sys.CrashedCount() != 1 {
		t.Fatalf("CrashedCount = %d, want 1", sys.CrashedCount())
	}
	if victim.Err() != nil {
		t.Fatalf("crash must not surface as a process error: %v", victim.Err())
	}
	if err := aud.Err(); err != nil {
		t.Fatalf("auditor: %v", err)
	}
}

// TestCrashedHighPriorityUnblocksLowPriority: a crashed mid-invocation
// high-priority process must be treated as departed (Axiom 1 claim
// lapses), so the low-priority process runs again and completes.
func TestCrashedHighPriorityUnblocksLowPriority(t *testing.T) {
	aud := sim.NewAuditor(4)
	sys := sim.New(sim.Config{
		Processors: 1, Quantum: 4,
		// hi (ID 1) crashes after 3 statements, mid-invocation.
		Chooser:  sched.NewCrash(sim.FirstChooser{}, sched.CrashPoint{Proc: 1, Step: 3}),
		Observer: aud,
		MaxSteps: 1 << 10,
	})
	var loDone bool
	lo := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: "lo"})
	lo.AddInvocation(func(c *sim.Ctx) {
		c.Local(10)
		loDone = true
	})
	hi := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 2, Name: "hi"})
	hi.AddInvocation(func(c *sim.Ctx) { c.Local(10) })
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !hi.Crashed() {
		t.Fatal("hi did not crash")
	}
	if !loDone {
		t.Fatal("low-priority survivor blocked behind a crashed process")
	}
	if err := aud.Err(); err != nil {
		t.Fatalf("auditor: %v", err)
	}
}

// TestCrashedQuantumHolderFreesLevel: crashing the protected quantum
// holder must free its level without a preemption event, letting the
// same-priority peer run immediately.
func TestCrashedQuantumHolderFreesLevel(t *testing.T) {
	// Rotate forces a same-priority preemption so process 0 becomes the
	// protected holder; then the crash fires while it is protected.
	inner := sched.NewRotate()
	ch := sched.NewCrash(inner, sched.CrashPoint{Proc: 0, Step: 6})
	aud := sim.NewAuditor(4)
	sys := sim.New(sim.Config{Processors: 1, Quantum: 4, Chooser: ch, Observer: aud, MaxSteps: 1 << 10})
	var done [2]bool
	for i := 0; i < 2; i++ {
		i := i
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) {
				c.Local(12)
				done[i] = true
			})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if done[0] || !done[1] {
		t.Fatalf("done = %v, want [false true]", done)
	}
	if err := aud.Err(); err != nil {
		t.Fatalf("auditor: %v", err)
	}
}

// TestCrashAllProcesses: the run terminates cleanly when every process
// crashes.
func TestCrashAllProcesses(t *testing.T) {
	sys := sim.New(sim.Config{
		Processors: 1, Quantum: 4,
		Chooser: sched.NewCrash(sim.FirstChooser{},
			sched.CrashPoint{Proc: 0, Step: 1}, sched.CrashPoint{Proc: 1, Step: 1}),
	})
	for i := 0; i < 2; i++ {
		sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) { c.Local(8) })
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sys.CrashedCount() != 2 {
		t.Fatalf("CrashedCount = %d, want 2", sys.CrashedCount())
	}
}

// TestCrashThinkingProcessNeverArrives: a process crashed while thinking
// departs silently; its remaining invocations never run.
func TestCrashThinkingProcessNeverArrives(t *testing.T) {
	aud := sim.NewAuditor(4)
	sys := sim.New(sim.Config{
		Processors: 1, Quantum: 4,
		// Victim is ID 1; crash before it ever arrives.
		Chooser:  sched.NewCrash(sim.FirstChooser{}, sched.CrashPoint{Proc: 1, Step: 0}),
		Observer: aud,
	})
	runner := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1})
	runner.AddInvocation(func(c *sim.Ctx) { c.Local(3) })
	victim := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1})
	victim.AddInvocation(func(c *sim.Ctx) { c.Local(3) })
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if victim.StmtsTotal() != 0 || victim.CompletedInvocations() != 0 {
		t.Fatalf("thinking victim executed %d statements, %d invocations; want 0/0",
			victim.StmtsTotal(), victim.CompletedInvocations())
	}
	if err := aud.Err(); err != nil {
		t.Fatalf("auditor: %v", err)
	}
}

// TestRandomCrashBudgetRespected: the random injector crashes at most
// its budget, reproducibly per seed, and audited runs stay clean.
func TestRandomCrashBudgetRespected(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		for _, budget := range []int{0, 1, 3} {
			ch := sched.NewRandomCrash(sched.NewRandom(seed), seed, budget, 0.05)
			aud := sim.NewAuditor(4)
			sys := sim.New(sim.Config{Processors: 2, Quantum: 4, Chooser: ch, Observer: aud, MaxSteps: 1 << 14})
			for i := 0; i < 4; i++ {
				p := sys.AddProcess(sim.ProcSpec{Processor: i % 2, Priority: 1 + i%2})
				p.AddInvocation(func(c *sim.Ctx) { c.Local(20) })
				p.AddInvocation(func(c *sim.Ctx) { c.Local(20) })
			}
			if err := sys.Run(); err != nil {
				t.Fatalf("seed=%d budget=%d: %v", seed, budget, err)
			}
			if got := sys.CrashedCount(); got > budget || got != ch.Injected {
				t.Fatalf("seed=%d budget=%d: crashed %d, injected %d", seed, budget, got, ch.Injected)
			}
			if err := aud.Err(); err != nil {
				t.Fatalf("seed=%d budget=%d: %v", seed, budget, err)
			}
		}
	}
}

// TestWorstInvStmtsIncludesUnfinished: a process aborted mid-invocation
// (step limit) reports the partial invocation through WorstInvStmts but
// not MaxInvStmts.
func TestWorstInvStmtsIncludesUnfinished(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 4, MaxSteps: 10})
	p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1})
	p.AddInvocation(func(c *sim.Ctx) {
		for {
			c.Local(1)
		}
	})
	if err := sys.Run(); err == nil {
		t.Fatal("Run succeeded, want step-limit abort")
	}
	if p.MaxInvStmts() != 0 {
		t.Fatalf("MaxInvStmts = %d, want 0 (invocation never completed)", p.MaxInvStmts())
	}
	if p.WorstInvStmts() != 10 {
		t.Fatalf("WorstInvStmts = %d, want 10", p.WorstInvStmts())
	}
}

// Auditor negatives for crash-stop semantics: every new fail branch must
// fire on a hand-corrupted event stream.

func TestAuditorDetectsStatementAfterCrash(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 4})
	p := makeProc(t, sys, 0, 1, "p")
	aud := sim.NewAuditor(4)
	aud.OnSchedule(sim.SchedEvent{Kind: sim.SchedArrive, Proc: p, Step: 0})
	aud.OnStatement(sim.StmtEvent{Proc: p, Step: 0})
	aud.OnSchedule(sim.SchedEvent{Kind: sim.SchedCrash, Proc: p, Step: 1})
	aud.OnStatement(sim.StmtEvent{Proc: p, Step: 2})
	if err := aud.Err(); err == nil || !strings.Contains(err.Error(), "crashed process") {
		t.Fatalf("statement after crash not detected: %v", err)
	}
}

func TestAuditorDetectsArrivalAfterCrash(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 4})
	p := makeProc(t, sys, 0, 1, "p")
	aud := sim.NewAuditor(4)
	aud.OnSchedule(sim.SchedEvent{Kind: sim.SchedCrash, Proc: p, Step: 0})
	aud.OnSchedule(sim.SchedEvent{Kind: sim.SchedArrive, Proc: p, Step: 1})
	if err := aud.Err(); err == nil || !strings.Contains(err.Error(), "crashed process") {
		t.Fatalf("arrival after crash not detected: %v", err)
	}
}

func TestAuditorDetectsDoubleCrash(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 4})
	p := makeProc(t, sys, 0, 1, "p")
	aud := sim.NewAuditor(4)
	aud.OnSchedule(sim.SchedEvent{Kind: sim.SchedCrash, Proc: p, Step: 0})
	aud.OnSchedule(sim.SchedEvent{Kind: sim.SchedCrash, Proc: p, Step: 1})
	if err := aud.Err(); err == nil || !strings.Contains(err.Error(), "crashed process") {
		t.Fatalf("double crash not detected: %v", err)
	}
}

func TestAuditorDetectsPreemptionByCrashedProcess(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 4})
	a := makeProc(t, sys, 0, 1, "a")
	b := makeProc(t, sys, 0, 1, "b")
	aud := sim.NewAuditor(4)
	aud.OnSchedule(sim.SchedEvent{Kind: sim.SchedArrive, Proc: a, Step: 0})
	aud.OnSchedule(sim.SchedEvent{Kind: sim.SchedCrash, Proc: b, Step: 1})
	aud.OnSchedule(sim.SchedEvent{Kind: sim.SchedPreempt, Proc: a, By: b, Step: 2})
	if err := aud.Err(); err == nil || !strings.Contains(err.Error(), "crashed process") {
		t.Fatalf("preemption by crashed process not detected: %v", err)
	}
}

// TestAuditorCrashedDoesNotBlockAxiom1: after a high-priority process
// crashes mid-invocation, a low-priority statement is legal.
func TestAuditorCrashedDoesNotBlockAxiom1(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 4})
	lo := makeProc(t, sys, 0, 1, "lo")
	hi := makeProc(t, sys, 0, 2, "hi")
	aud := sim.NewAuditor(4)
	aud.OnSchedule(sim.SchedEvent{Kind: sim.SchedArrive, Proc: hi, Step: 0})
	aud.OnStatement(sim.StmtEvent{Proc: hi, Step: 0})
	aud.OnSchedule(sim.SchedEvent{Kind: sim.SchedCrash, Proc: hi, Step: 1})
	aud.OnSchedule(sim.SchedEvent{Kind: sim.SchedArrive, Proc: lo, Step: 1})
	aud.OnStatement(sim.StmtEvent{Proc: lo, Step: 1})
	if err := aud.Err(); err != nil {
		t.Fatalf("crashed process still claims its priority: %v", err)
	}
}

// TestSingleStatementInvocationCompletes is a regression test for an
// accounting bug found by the multicons crash fuzz: an invocation whose
// only statement is its arrival statement (e.g. a fast path that reads a
// published decision and returns) must still be recorded as completed —
// incrementing CompletedInvocations, emitting SchedInvEnd, freeing the
// level's holder slot, and resetting the per-invocation statement count.
func TestSingleStatementInvocationCompletes(t *testing.T) {
	invEnds := 0
	obs := observerFunc2{onSched: func(ev sim.SchedEvent) {
		if ev.Kind == sim.SchedInvEnd {
			invEnds++
		}
	}}
	sys := sim.New(sim.Config{Processors: 1, Quantum: 4, Observer: obs})
	p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1})
	p.AddInvocation(func(c *sim.Ctx) { c.Local(1) })
	p.AddInvocation(func(c *sim.Ctx) { c.Local(3) })
	var other bool
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
		AddInvocation(func(c *sim.Ctx) {
			c.Local(2)
			other = true
		})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if p.CompletedInvocations() != 2 {
		t.Fatalf("CompletedInvocations = %d, want 2 (single-statement invocation lost)", p.CompletedInvocations())
	}
	if p.MaxInvStmts() != 3 {
		t.Fatalf("MaxInvStmts = %d, want 3 (per-invocation count leaked across invocations)", p.MaxInvStmts())
	}
	if invEnds != 3 {
		t.Fatalf("SchedInvEnd events = %d, want 3", invEnds)
	}
	if !other {
		t.Fatal("peer process blocked by a stale holder slot")
	}
}

type observerFunc2 struct {
	onSched func(sim.SchedEvent)
}

func (o observerFunc2) OnStatement(sim.StmtEvent) {}
func (o observerFunc2) OnSchedule(ev sim.SchedEvent) {
	if o.onSched != nil {
		o.onSched(ev)
	}
}
