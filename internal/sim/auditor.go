package sim

import "fmt"

// Auditor is an Observer that independently re-verifies the paper's
// scheduling axioms from the event stream alone, without trusting the
// kernel's internal bookkeeping. Wire it in as (or inside) the
// Config.Observer of any run and inspect Err afterwards; every
// algorithm-level result in this repository is only as trustworthy as
// these axioms, so the test suites run audited.
//
// Checked:
//
//   - Axiom 1: no statement executes while a higher-priority process on
//     the same processor is mid-invocation (it would be ready and must
//     run first).
//   - Axiom 2: when a process suffers a same-priority preemption, it has
//     executed at least Q of its own statements since resuming from its
//     previous same-priority preemption in the same invocation (its
//     first preemption may come at any time); higher-priority
//     interruptions do not count against the quantum.
//   - Event sanity: statements only from arrived processes, preemptions
//     only between equal priorities on one processor.
//   - Crash-stop semantics: a crashed process is departed — it must
//     never execute another statement, arrive, crash again, or appear
//     on either side of a preemption; its unfinished invocation must
//     not block lower-priority survivors (its Axiom 1 claim lapses).
type Auditor struct {
	quantum int
	procs   map[*Process]*auditState
	err     error
}

type auditState struct {
	active       bool // mid-invocation
	crashed      bool // halted by a crash-stop fault
	sinceResume  int  // own statements since last same-priority preemption
	preemptedInv bool // suffered a same-priority preemption this invocation
}

var _ Observer = (*Auditor)(nil)

// NewAuditor returns an auditor for systems with the given quantum.
func NewAuditor(quantum int) *Auditor {
	return &Auditor{quantum: quantum, procs: make(map[*Process]*auditState)}
}

// Err returns the first axiom violation observed, or nil.
func (a *Auditor) Err() error { return a.err }

// Reset clears the audit state for a pooled rerun (System.OnReset
// hooks): Config.Observer is fixed at New, so a reusable system reuses
// the same auditor across runs.
func (a *Auditor) Reset() {
	clear(a.procs)
	a.err = nil
}

func (a *Auditor) fail(format string, args ...any) {
	if a.err == nil {
		a.err = fmt.Errorf("sim: axiom audit: "+format, args...)
	}
}

func (a *Auditor) state(p *Process) *auditState {
	s, ok := a.procs[p]
	if !ok {
		s = &auditState{}
		a.procs[p] = s
	}
	return s
}

// OnStatement implements Observer.
func (a *Auditor) OnStatement(ev StmtEvent) {
	p := ev.Proc
	s := a.state(p)
	if s.crashed {
		a.fail("step %d: crashed process %s executed a statement", ev.Step, p.Name())
		return
	}
	if !s.active {
		a.fail("step %d: %s executed a statement while not mid-invocation", ev.Step, p.Name())
		return
	}
	// Axiom 1: nothing above p may be mid-invocation on p's processor.
	//repro:allow maporder existence test; iteration order only picks which witness names the diagnostic
	for q, qs := range a.procs {
		if q != p && qs.active && q.Processor() == p.Processor() && q.Priority() > p.Priority() {
			a.fail("step %d: %s (pri %d) ran while %s (pri %d) was ready on processor %d",
				ev.Step, p.Name(), p.Priority(), q.Name(), q.Priority(), p.Processor())
			return
		}
	}
	s.sinceResume++
}

// OnSchedule implements Observer.
func (a *Auditor) OnSchedule(ev SchedEvent) {
	s := a.state(ev.Proc)
	if s.crashed {
		a.fail("step %d: %s event for crashed process %s", ev.Step, ev.Kind, ev.Proc.Name())
		return
	}
	switch ev.Kind {
	case SchedArrive:
		if s.active {
			a.fail("step %d: %s arrived while already mid-invocation", ev.Step, ev.Proc.Name())
			return
		}
		s.active = true
		s.sinceResume = 0
		s.preemptedInv = false
	case SchedInvEnd, SchedProcDone:
		s.active = false
	case SchedCrash:
		// Crash-stop: the process departs; its unfinished invocation no
		// longer claims its priority level (Axiom 1) and it earns no
		// quantum protection (Axiom 2) — it simply must never act again.
		s.active = false
		s.crashed = true
	case SchedPreempt:
		if ev.By == nil {
			a.fail("step %d: preemption of %s without a preemptor", ev.Step, ev.Proc.Name())
			return
		}
		if a.state(ev.By).crashed {
			a.fail("step %d: %s preempted by crashed process %s", ev.Step, ev.Proc.Name(), ev.By.Name())
			return
		}
		if ev.By.Priority() != ev.Proc.Priority() || ev.By.Processor() != ev.Proc.Processor() {
			a.fail("step %d: preemption of %s by %s crosses priority/processor",
				ev.Step, ev.Proc.Name(), ev.By.Name())
			return
		}
		if !s.active {
			a.fail("step %d: %s preempted while not mid-invocation", ev.Step, ev.Proc.Name())
			return
		}
		// Axiom 2.
		if s.preemptedInv && s.sinceResume < a.quantum {
			a.fail("step %d: %s re-preempted after only %d < Q=%d statements",
				ev.Step, ev.Proc.Name(), s.sinceResume, a.quantum)
			return
		}
		s.preemptedInv = true
		s.sinceResume = 0
	}
}

// Tee fans events out to several observers (e.g. an Auditor plus a
// trace recorder).
type Tee struct {
	// Observers receive every event in order.
	Observers []Observer
}

var _ Observer = (*Tee)(nil)

// OnStatement implements Observer.
func (t *Tee) OnStatement(ev StmtEvent) {
	for _, o := range t.Observers {
		o.OnStatement(ev)
	}
}

// OnSchedule implements Observer.
func (t *Tee) OnSchedule(ev SchedEvent) {
	for _, o := range t.Observers {
		o.OnSchedule(ev)
	}
}
