package sim

import "repro/internal/mem"

// Op identifies the kind of atomic statement a process executed.
type Op int

// Statement kinds.
const (
	OpRead  Op = iota + 1 // shared register read
	OpWrite               // shared register write
	OpCons                // C-consensus object invocation
	OpLocal               // counted local statement
)

// String returns a short mnemonic for the op.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "R"
	case OpWrite:
		return "W"
	case OpCons:
		return "C"
	case OpLocal:
		return "L"
	default:
		return "?"
	}
}

// StmtEvent describes one executed atomic statement.
type StmtEvent struct {
	// Proc is the executing process.
	Proc *Process
	// Op is the statement kind.
	Op Op
	// Object names the register or consensus object touched ("" for
	// local statements).
	Object string
	// Value is the value read, written, or returned.
	Value uint64
	// Step is the global statement index (set by the kernel).
	Step int64
	// Fp is the statement's canonical access footprint.
	Fp mem.Footprint
}

// Access describes one executed atomic statement (or crash event) for
// dependence analysis: which process ran, on which processor, with what
// footprint. The kernel accumulates accesses between decision points
// and delivers them in Decision.Since, so a footprint-aware chooser can
// track which pending statements a just-executed statement conflicts
// with.
type Access struct {
	// Proc is the executing (or crashing) process's id.
	Proc int
	// Processor is that process's processor index.
	Processor int
	// Fp is the executed statement's footprint (zero for crash events).
	Fp mem.Footprint
	// Global marks events that are dependent with everything: invocation
	// arrivals (the statement also changes scheduler arrival state),
	// invocation completions (holder slots free, dynamic priorities
	// apply, operation precedence is established), and crash-stop faults.
	Global bool
}

// SchedKind identifies a scheduling event.
type SchedKind int

// Scheduling event kinds.
const (
	SchedArrive   SchedKind = iota + 1 // thinking process began an invocation
	SchedPreempt                       // same-priority (quantum) preemption
	SchedInvEnd                        // invocation completed
	SchedProcDone                      // process program finished
	SchedCrash                         // process halted by a crash-stop fault
)

// String returns a short mnemonic for the scheduling event kind.
func (k SchedKind) String() string {
	switch k {
	case SchedArrive:
		return "arrive"
	case SchedPreempt:
		return "preempt"
	case SchedInvEnd:
		return "inv-end"
	case SchedProcDone:
		return "done"
	case SchedCrash:
		return "crash"
	default:
		return "?"
	}
}

// SchedEvent describes one scheduling event.
type SchedEvent struct {
	// Kind is the event kind.
	Kind SchedKind
	// Proc is the process the event concerns (for SchedPreempt, the
	// preempted process).
	Proc *Process
	// By is the preempting process for SchedPreempt, nil otherwise.
	By *Process
	// Step is the global statement index at which the event occurred.
	Step int64
}

// Observer receives simulation events. Implementations must not touch
// shared memory or the system; they are called synchronously from the
// kernel loop.
type Observer interface {
	// OnStatement is called after each executed statement.
	OnStatement(ev StmtEvent)
	// OnSchedule is called after each scheduling event.
	OnSchedule(ev SchedEvent)
}
