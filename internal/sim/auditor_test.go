package sim_test

import (
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/unicons"
)

// TestAuditorCleanOnKernelSchedules wires the independent axiom auditor
// into heavily adversarial runs of a real algorithm: the kernel must
// never produce an event stream violating Axioms 1-2.
func TestAuditorCleanOnKernelSchedules(t *testing.T) {
	for _, quantum := range []int{0, 1, 4, 8, 32} {
		for seed := int64(0); seed < 40; seed++ {
			aud := sim.NewAuditor(quantum)
			sys := sim.New(sim.Config{
				Processors: 2, Quantum: quantum,
				Chooser: sched.NewRandom(seed), Observer: aud, MaxSteps: 1 << 18,
			})
			obj := unicons.New("cons")
			for i := 0; i < 6; i++ {
				p := sys.AddProcess(sim.ProcSpec{Processor: i % 2, Priority: 1 + i%3})
				for k := 0; k < 2; k++ {
					p.AddInvocation(func(c *sim.Ctx) { obj.Decide(c, 1) })
				}
			}
			if err := sys.Run(); err != nil {
				t.Fatalf("Q=%d seed=%d: %v", quantum, seed, err)
			}
			if err := aud.Err(); err != nil {
				t.Fatalf("Q=%d seed=%d: %v", quantum, seed, err)
			}
		}
	}
}

func TestAuditorCleanUnderStaggerAndRotate(t *testing.T) {
	for _, ch := range []sim.Chooser{sched.NewRotate(), sched.NewStagger(5, 1), sched.NewStagger(5, 3)} {
		aud := sim.NewAuditor(5)
		sys := sim.New(sim.Config{Processors: 1, Quantum: 5, Chooser: ch, Observer: aud})
		for i := 0; i < 4; i++ {
			p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1 + i%2})
			p.AddInvocation(func(c *sim.Ctx) { c.Local(12) })
		}
		if err := sys.Run(); err != nil {
			t.Fatalf("%T: %v", ch, err)
		}
		if err := aud.Err(); err != nil {
			t.Fatalf("%T: %v", ch, err)
		}
	}
}

// makeProc builds a throwaway Process carrying identity for synthetic
// event streams.
func makeProc(t *testing.T, sys *sim.System, processor, pri int, name string) *sim.Process {
	t.Helper()
	return sys.AddProcess(sim.ProcSpec{Processor: processor, Priority: pri, Name: name})
}

// TestAuditorDetectsAxiom1Violation feeds a synthetic event stream in
// which a low-priority process runs while a higher one is mid-invocation.
func TestAuditorDetectsAxiom1Violation(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 4})
	lo := makeProc(t, sys, 0, 1, "lo")
	hi := makeProc(t, sys, 0, 2, "hi")
	aud := sim.NewAuditor(4)
	aud.OnSchedule(sim.SchedEvent{Kind: sim.SchedArrive, Proc: hi, Step: 0})
	aud.OnSchedule(sim.SchedEvent{Kind: sim.SchedArrive, Proc: lo, Step: 1})
	aud.OnStatement(sim.StmtEvent{Proc: lo, Op: sim.OpLocal, Step: 1})
	if err := aud.Err(); err == nil || !strings.Contains(err.Error(), "ready") {
		t.Fatalf("Axiom 1 violation not detected: %v", err)
	}
}

// TestAuditorDetectsAxiom2Violation feeds a stream with a second
// same-priority preemption after too few statements.
func TestAuditorDetectsAxiom2Violation(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 4})
	a := makeProc(t, sys, 0, 1, "a")
	b := makeProc(t, sys, 0, 1, "b")
	aud := sim.NewAuditor(4)
	aud.OnSchedule(sim.SchedEvent{Kind: sim.SchedArrive, Proc: a, Step: 0})
	aud.OnSchedule(sim.SchedEvent{Kind: sim.SchedArrive, Proc: b, Step: 1})
	aud.OnStatement(sim.StmtEvent{Proc: a, Step: 1})
	aud.OnSchedule(sim.SchedEvent{Kind: sim.SchedPreempt, Proc: a, By: b, Step: 2}) // first: legal
	aud.OnStatement(sim.StmtEvent{Proc: b, Step: 2})
	aud.OnStatement(sim.StmtEvent{Proc: a, Step: 3})
	aud.OnSchedule(sim.SchedEvent{Kind: sim.SchedPreempt, Proc: a, By: b, Step: 4}) // after 1 < Q=4
	if err := aud.Err(); err == nil || !strings.Contains(err.Error(), "re-preempted") {
		t.Fatalf("Axiom 2 violation not detected: %v", err)
	}
}

// TestAuditorDetectsCrossPriorityPreemptEvent rejects a preemption event
// crossing priorities.
func TestAuditorDetectsCrossPriorityPreemptEvent(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 4})
	lo := makeProc(t, sys, 0, 1, "lo")
	hi := makeProc(t, sys, 0, 2, "hi")
	aud := sim.NewAuditor(4)
	aud.OnSchedule(sim.SchedEvent{Kind: sim.SchedArrive, Proc: lo, Step: 0})
	aud.OnSchedule(sim.SchedEvent{Kind: sim.SchedPreempt, Proc: lo, By: hi, Step: 1})
	if err := aud.Err(); err == nil || !strings.Contains(err.Error(), "crosses") {
		t.Fatalf("cross-priority preempt event not detected: %v", err)
	}
}

// TestAuditorDetectsStatementWithoutArrival rejects statements from
// processes that never arrived.
func TestAuditorDetectsStatementWithoutArrival(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 4})
	p := makeProc(t, sys, 0, 1, "p")
	aud := sim.NewAuditor(4)
	aud.OnStatement(sim.StmtEvent{Proc: p, Step: 0})
	if err := aud.Err(); err == nil {
		t.Fatal("statement without arrival not detected")
	}
}

// TestTeeFansOut checks the Tee observer delivers to all children.
func TestTeeFansOut(t *testing.T) {
	aud := sim.NewAuditor(4)
	var n int
	countObs := observerFunc{onStmt: func(sim.StmtEvent) { n++ }}
	tee := &sim.Tee{Observers: []sim.Observer{aud, countObs}}
	sys := sim.New(sim.Config{Processors: 1, Quantum: 4, Observer: tee})
	r := mem.NewReg("r")
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
		AddInvocation(func(c *sim.Ctx) { c.Write(r, 1); c.Read(r) })
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 2 {
		t.Fatalf("tee delivered %d statements, want 2", n)
	}
	if aud.Err() != nil {
		t.Fatalf("auditor: %v", aud.Err())
	}
}

type observerFunc struct {
	onStmt func(sim.StmtEvent)
}

func (o observerFunc) OnStatement(ev sim.StmtEvent) {
	if o.onStmt != nil {
		o.onStmt(ev)
	}
}
func (o observerFunc) OnSchedule(sim.SchedEvent) {}
