package sim

import "repro/internal/mem"

// Fingerprint returns a deterministic hash of the complete observable
// system state: shared memory, each process's control point, and the
// scheduler's quantum bookkeeping. Two runs of the same workload whose
// fingerprints are equal at a decision point have identical futures for
// identical remaining decisions, so an explorer may soundly prune one
// in favor of the other.
//
// The hash is maintained incrementally as two XOR accumulators — the
// memory fingerprint (updated by the Ctx accessors on every mutating
// access) and the process fingerprint (per-process contributions,
// domain-separated by process id, recomputed lazily for processes the
// kernel marked dirty since the last call). XOR composition makes each
// delta O(1): an access changes one object's StateHash term and at most
// two processes' contributions, never the whole system.
//
// The components, all derived from deterministic counters (never wall
// clock, map order, or pointer identity):
//
//   - the memory fingerprint (XOR of every touched object's StateHash —
//     equal memory states hash equally regardless of the access order
//     that produced them);
//   - per process: lifecycle state, priority, invocation index,
//     statements within the current invocation, total statements, and
//     the observation hash of every value it has read — the stand-in
//     for the process's opaque local state, sound because invocation
//     bodies are deterministic functions of what they read;
//   - per process, the scheduler state that steers future grants:
//     quantum protection, statements since resume while protected, and
//     whether the process holds its priority level's quantum slot.
//     With Quantum == 0 protection cannot arise, so holder identity and
//     resume counters are irrelevant to the future and excluded.
//
// Diagnostic statistics that no scheduling rule or explorer verdict
// reads (Process.Preemptions, Process.MaxInvStmts of completed
// invocations) are deliberately excluded: including them would split
// states that are behaviorally identical.
func (s *System) Fingerprint() uint64 {
	for _, p := range s.procs {
		if !p.fpDirty {
			continue
		}
		h := s.procContribution(p)
		s.procFP ^= p.fpCache ^ h
		p.fpCache = h
		p.fpDirty = false
	}
	return mem.Mix(mem.Mix(fingerprintSeed, s.memFP), s.procFP)
}

// procContribution hashes one process's fingerprint component. The
// leading Mix over the process id domain-separates contributions so the
// XOR in Fingerprint cannot cancel identical states of distinct
// processes.
func (s *System) procContribution(p *Process) uint64 {
	h := mem.Mix(fingerprintSeed, uint64(p.id)+1)
	h = mem.Mix(h, uint64(p.state))
	h = mem.Mix(h, uint64(p.pri))
	h = mem.Mix(h, uint64(p.invIndex))
	h = mem.Mix(h, uint64(p.stmtsThisInv))
	h = mem.Mix(h, uint64(p.stmtsTotal))
	h = mem.Mix(h, p.obsHash)
	if s.cfg.Quantum > 0 {
		sched := uint64(0)
		if p.protected {
			sched = 1 | uint64(p.sinceResume)<<2
		}
		if s.holder(p.processor, p.pri) == p {
			sched |= 2
		}
		h = mem.Mix(h, sched)
	}
	return h
}

// MemFingerprint returns the memory-substrate component of the system
// fingerprint alone: the XOR of every touched shared object's
// StateHash (registers, CAS words, and consensus decision state).
func (s *System) MemFingerprint() uint64 { return s.memFP }

// fingerprintSeed domain-separates system fingerprints from raw object
// ids.
const fingerprintSeed uint64 = 0x9e3779b97f4a7c15
