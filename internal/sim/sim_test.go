package sim_test

import (
	"errors"
	"testing"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestSingleProcessRuns(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 4})
	r := mem.NewReg("r")
	var saw mem.Word
	p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1})
	p.AddInvocation(func(c *sim.Ctx) {
		c.Write(r, 7)
		saw = c.Read(r)
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if saw != 7 {
		t.Fatalf("read %d, want 7", saw)
	}
	if got := p.StmtsTotal(); got != 2 {
		t.Fatalf("statements = %d, want 2", got)
	}
	if got := p.CompletedInvocations(); got != 1 {
		t.Fatalf("completed invocations = %d, want 1", got)
	}
}

func TestRunTwiceFails(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 1})
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
		AddInvocation(func(c *sim.Ctx) { c.Local(1) })
	if err := sys.Run(); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if err := sys.Run(); !errors.Is(err, sim.ErrRunTwice) {
		t.Fatalf("second Run = %v, want ErrRunTwice", err)
	}
}

func TestStepLimit(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 1, MaxSteps: 10})
	r := mem.NewReg("spin")
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
		AddInvocation(func(c *sim.Ctx) {
			for c.Read(r) == mem.Bottom {
			}
		})
	if err := sys.Run(); !errors.Is(err, sim.ErrStepLimit) {
		t.Fatalf("Run = %v, want ErrStepLimit", err)
	}
}

func TestProcessPanicSurfaces(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 1})
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: "boom"}).
		AddInvocation(func(c *sim.Ctx) {
			c.Local(1)
			panic("kaboom")
		})
	err := sys.Run()
	if err == nil {
		t.Fatal("Run succeeded, want panic error")
	}
}

// TestPriorityPreemption checks Axiom 1: a higher-priority arrival runs
// to completion before the lower-priority process resumes. With the
// Rotate chooser the high-priority process arrives at the first legal
// opportunity.
func TestPriorityPreemption(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 100, Chooser: sched.NewRotate()})
	r := mem.NewReg("r")
	var order []int

	lo := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: "lo"})
	lo.AddInvocation(func(c *sim.Ctx) {
		for i := 0; i < 5; i++ {
			c.Write(r, 1)
			order = append(order, 1)
		}
	})
	hi := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 2, Name: "hi"})
	hi.AddInvocation(func(c *sim.Ctx) {
		for i := 0; i < 5; i++ {
			c.Write(r, 2)
			order = append(order, 2)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Once the high-priority process has run its first statement, all its
	// statements must be contiguous (nothing can preempt it).
	first := -1
	for i, v := range order {
		if v == 2 {
			first = i
			break
		}
	}
	if first == -1 {
		t.Fatal("high-priority process never ran")
	}
	for i := first; i < first+5; i++ {
		if order[i] != 2 {
			t.Fatalf("high-priority run not contiguous: order=%v", order)
		}
	}
}

// TestQuantumProtection checks Axiom 2: after a same-priority
// preemption, the victim executes at least Q statements before the next
// same-priority preemption.
func TestQuantumProtection(t *testing.T) {
	const q = 5
	sys := sim.New(sim.Config{Processors: 1, Quantum: q, Chooser: sched.NewRotate()})
	var order []int
	mk := func(id int) sim.Invocation {
		return func(c *sim.Ctx) {
			for i := 0; i < 3*q; i++ {
				c.Local(1)
				order = append(order, id)
			}
		}
	}
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: "a"}).AddInvocation(mk(0))
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1, Name: "b"}).AddInvocation(mk(1))
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Verify: between two runs of the same process separated by the other
	// process, each resumed burst (other than a final partial one before
	// invocation end) has length >= q once the process has been preempted.
	burstLens := make(map[int][]int)
	cur, n := order[0], 0
	for _, v := range order {
		if v == cur {
			n++
			continue
		}
		burstLens[cur] = append(burstLens[cur], n)
		cur, n = v, 1
	}
	burstLens[cur] = append(burstLens[cur], n)
	for id, bursts := range burstLens {
		// Every burst after the first must be >= q, except the last burst
		// of a process (its invocation may end early).
		for i := 1; i < len(bursts)-1; i++ {
			if bursts[i] < q {
				t.Fatalf("process %d resumed burst %d has %d < Q=%d statements; bursts=%v",
					id, i, bursts[i], q, bursts)
			}
		}
	}
}

// TestMultiprocessorIsolation checks that processes on different
// processors interleave freely (no cross-processor preemption rules).
func TestMultiprocessorIsolation(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 2, Quantum: 3, Chooser: sched.NewRandom(1)})
	r := mem.NewReg("shared")
	done := make([]bool, 2)
	for i := 0; i < 2; i++ {
		i := i
		sys.AddProcess(sim.ProcSpec{Processor: i, Priority: 1}).
			AddInvocation(func(c *sim.Ctx) {
				for j := 0; j < 10; j++ {
					c.Write(r, mem.Word(i))
					c.Read(r)
				}
				done[i] = true
			})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !done[0] || !done[1] {
		t.Fatalf("not all processes completed: %v", done)
	}
}

// TestThinkingArrival checks the invocation lifecycle: a process's
// second invocation begins only after its first completed.
func TestThinkingArrival(t *testing.T) {
	sys := sim.New(sim.Config{Processors: 1, Quantum: 2, Chooser: sched.NewRandom(7)})
	count := 0
	p := sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1})
	for i := 0; i < 3; i++ {
		p.AddInvocation(func(c *sim.Ctx) {
			c.Local(2)
			count++
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 3 {
		t.Fatalf("invocations run = %d, want 3", count)
	}
	if p.CompletedInvocations() != 3 {
		t.Fatalf("CompletedInvocations = %d, want 3", p.CompletedInvocations())
	}
	if p.MaxInvStmts() != 2 {
		t.Fatalf("MaxInvStmts = %d, want 2", p.MaxInvStmts())
	}
}

// TestObserverEvents checks statement and scheduling events fire.
func TestObserverEvents(t *testing.T) {
	obs := &recordingObserver{}
	sys := sim.New(sim.Config{Processors: 1, Quantum: 2, Observer: obs})
	r := mem.NewReg("x")
	sys.AddProcess(sim.ProcSpec{Processor: 0, Priority: 1}).
		AddInvocation(func(c *sim.Ctx) {
			c.Write(r, 5)
			c.Read(r)
		})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(obs.stmts) != 2 {
		t.Fatalf("statements observed = %d, want 2", len(obs.stmts))
	}
	if obs.stmts[0].Op != sim.OpWrite || obs.stmts[1].Op != sim.OpRead {
		t.Fatalf("ops = %v,%v want W,R", obs.stmts[0].Op, obs.stmts[1].Op)
	}
	wantSched := []sim.SchedKind{sim.SchedArrive, sim.SchedInvEnd, sim.SchedProcDone}
	if len(obs.scheds) != len(wantSched) {
		t.Fatalf("sched events = %v", obs.scheds)
	}
	for i, k := range wantSched {
		if obs.scheds[i].Kind != k {
			t.Fatalf("sched event %d = %v, want %v", i, obs.scheds[i].Kind, k)
		}
	}
}

type recordingObserver struct {
	stmts  []sim.StmtEvent
	scheds []sim.SchedEvent
}

func (o *recordingObserver) OnStatement(ev sim.StmtEvent) { o.stmts = append(o.stmts, ev) }
func (o *recordingObserver) OnSchedule(ev sim.SchedEvent) { o.scheds = append(o.scheds, ev) }
