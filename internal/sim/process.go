package sim

import (
	"fmt"

	"repro/internal/mem"
)

// grantKind is the kernel→process message.
type grantKind int

const (
	grantRun   grantKind = iota + 1 // execute one atomic statement
	grantAbort                      // unwind and terminate immediately
)

// yieldKind is the process→kernel message.
type yieldKind int

const (
	yieldStmt     yieldKind = iota + 1 // mid-invocation, requesting next statement
	yieldThinking                      // between invocations, awaiting arrival
	yieldDone                          // program finished (or aborted)
)

type yieldMsg struct {
	kind yieldKind
}

// procState is the kernel's view of a process, derived from its last
// yield message.
type procState int

const (
	stateThinking procState = iota + 1 // awaiting arrival of next invocation
	stateRunnable                      // mid-invocation, ready to run
	stateDone                          // program finished
	stateCrashed                       // halted permanently by a crash-stop fault
)

// errAborted is the panic value used to unwind a process goroutine when
// the kernel aborts the run.
var errAborted = fmt.Errorf("sim: process aborted")

// Invocation is one object invocation executed by a process: the body
// runs algorithm code against shared memory via the Ctx. Every
// invocation must execute at least one atomic statement.
type Invocation func(c *Ctx)

// Process is a simulated process. Configure it before Run with
// AddInvocation; inspect statistics after Run.
type Process struct {
	id        int
	name      string
	processor int
	pri       int
	sys       *System

	invocations []Invocation
	invPri      []int // per-invocation priority (0 = keep current)

	toKernel   chan yieldMsg
	fromKernel chan grantKind

	// Kernel-side scheduling state.
	state       procState
	protected   bool // mid-quantum guarantee after a same-priority preemption
	sinceResume int  // own statements since last same-priority preemption
	preemptions int  // same-priority preemptions suffered

	// Statistics.
	invIndex     int
	stmtsThisInv int64
	stmtsTotal   int64
	maxInvStmts  int64

	// lastEvent describes the statement most recently executed; written
	// by the process while it holds the baton, read by the kernel after
	// the baton returns.
	lastEvent StmtEvent

	aborted bool
	crashed bool
	err     error
}

// ID returns the process's index in System.Processes order.
func (p *Process) ID() int { return p.id }

// Name returns the process's diagnostic name.
func (p *Process) Name() string { return p.name }

// Processor returns the index of the processor the process runs on.
func (p *Process) Processor() int { return p.processor }

// Priority returns the process's priority (1..V, V highest).
func (p *Process) Priority() int { return p.pri }

// AddInvocation appends an object invocation to the process's program.
func (p *Process) AddInvocation(inv Invocation) *Process {
	if p.sys.ran {
		panic("sim: AddInvocation after Run")
	}
	p.invocations = append(p.invocations, inv)
	p.invPri = append(p.invPri, 0)
	return p
}

// AddInvocationPri appends an invocation to run at the given priority,
// supporting the paper's §5 dynamic-priority systems: a process's
// priority may change between invocations but never during one. The
// priority takes effect when the previous invocation completes.
func (p *Process) AddInvocationPri(pri int, inv Invocation) *Process {
	if p.sys.ran {
		panic("sim: AddInvocationPri after Run")
	}
	if pri < 1 {
		panic(fmt.Sprintf("sim: priority must be >= 1, got %d", pri))
	}
	p.invocations = append(p.invocations, inv)
	p.invPri = append(p.invPri, pri)
	return p
}

// StmtsTotal returns the total statements the process executed.
func (p *Process) StmtsTotal() int64 { return p.stmtsTotal }

// MaxInvStmts returns the maximum statements executed in any single
// completed invocation — the process's worst-case wait-free step bound
// in this run.
func (p *Process) MaxInvStmts() int64 { return p.maxInvStmts }

// WorstInvStmts returns the maximum statements the process executed
// within any single invocation, including an invocation still in
// progress when the run ended (crash, abort, or step limit). This is
// the quantity a wait-freedom bound constrains: a process spinning
// forever never completes its invocation, so MaxInvStmts alone would
// miss it.
func (p *Process) WorstInvStmts() int64 {
	if p.stmtsThisInv > p.maxInvStmts {
		return p.stmtsThisInv
	}
	return p.maxInvStmts
}

// Crashed reports whether the process was halted by a crash-stop fault.
func (p *Process) Crashed() bool { return p.crashed }

// Live reports whether the process has neither finished its program nor
// crashed. Kernel-side state: safe to read from a Chooser or after Run,
// not from algorithm code.
func (p *Process) Live() bool {
	return p.state != stateDone && p.state != stateCrashed
}

// Preemptions returns how many same-priority preemptions the process
// suffered.
func (p *Process) Preemptions() int { return p.preemptions }

// CompletedInvocations returns how many invocations the process finished.
func (p *Process) CompletedInvocations() int { return p.invIndex }

// Err returns the panic value, if any, with which the process's program
// failed (nil for clean completion or kernel-initiated abort).
func (p *Process) Err() error { return p.err }

// run is the process goroutine body.
func (p *Process) run() {
	c := &Ctx{p: p}
	defer func() {
		if r := recover(); r != nil && r != errAborted { //nolint:errorlint // sentinel identity
			p.err = fmt.Errorf("sim: process %s panicked: %v", p.name, r)
		}
		p.toKernel <- yieldMsg{kind: yieldDone}
	}()
	for i := range p.invocations {
		p.await()
		c.hasGrant = true
		p.invocations[i](c)
		if c.hasGrant {
			panic(fmt.Sprintf("sim: invocation %d of %s executed no statements", i, p.name))
		}
	}
}

// await parks the process as thinking until the kernel grants arrival.
// The grant doubles as permission to execute the first statement of the
// next invocation.
func (p *Process) await() {
	p.toKernel <- yieldMsg{kind: yieldThinking}
	if <-p.fromKernel == grantAbort {
		p.aborted = true
		panic(errAborted)
	}
}

// Ctx is a process's handle to shared memory. Each method executes
// exactly the number of atomic statements its paper counterpart does.
// A Ctx is only valid inside the invocation it was passed to.
type Ctx struct {
	p        *Process
	hasGrant bool
}

// ID returns the process identifier (0-based).
func (c *Ctx) ID() int { return c.p.id }

// Now returns the global statement count — a logical timestamp usable
// for history recording (e.g. linearizability checking). It executes no
// statement.
func (c *Ctx) Now() int64 { return c.p.sys.steps }

// Pri returns the process priority (1..V, V highest).
func (c *Ctx) Pri() int { return c.p.pri }

// Processor returns the index of the processor the process runs on.
func (c *Ctx) Processor() int { return c.p.processor }

// stmt blocks until the kernel grants one atomic statement.
func (c *Ctx) stmt() {
	if c.p.aborted {
		panic(errAborted)
	}
	if c.hasGrant {
		c.hasGrant = false
		return
	}
	c.p.toKernel <- yieldMsg{kind: yieldStmt}
	if <-c.p.fromKernel == grantAbort {
		c.p.aborted = true
		panic(errAborted)
	}
}

// Read atomically reads register r (one statement).
func (c *Ctx) Read(r *mem.Reg) mem.Word {
	c.stmt()
	v := r.Load()
	c.p.lastEvent = StmtEvent{Proc: c.p, Op: OpRead, Object: r.Name(), Value: v}
	return v
}

// Write atomically writes v to register r (one statement).
func (c *Ctx) Write(r *mem.Reg, v mem.Word) {
	c.stmt()
	r.Store(v)
	c.p.lastEvent = StmtEvent{Proc: c.p, Op: OpWrite, Object: r.Name(), Value: v}
}

// CCons invokes C-consensus object o with proposal v (one statement) and
// returns the object's response (the decided value, or ⊥ after the C-th
// invocation).
func (c *Ctx) CCons(o *mem.ConsObject, v mem.Word) mem.Word {
	c.stmt()
	out := o.Invoke(v)
	c.p.lastEvent = StmtEvent{Proc: c.p, Op: OpCons, Object: o.Name(), Value: out}
	return out
}

// CASPrim performs a hardware compare-and-swap on primitive object o
// (one statement). Baseline comparators only; the paper's algorithms use
// nothing stronger than registers and C-consensus objects.
func (c *Ctx) CASPrim(o *mem.CASObject, old, new mem.Word) bool {
	c.stmt()
	ok := o.CompareAndSwap(old, new)
	v := mem.Word(0)
	if ok {
		v = 1
	}
	c.p.lastEvent = StmtEvent{Proc: c.p, Op: OpCons, Object: o.Name(), Value: v}
	return ok
}

// LoadPrim reads primitive CAS object o (one statement).
func (c *Ctx) LoadPrim(o *mem.CASObject) mem.Word {
	c.stmt()
	v := o.Load()
	c.p.lastEvent = StmtEvent{Proc: c.p, Op: OpRead, Object: o.Name(), Value: v}
	return v
}

// Local executes n counted local statements (no shared access). Use it
// to honor the paper's numbered-statement quantum accounting (e.g. the
// "v := val" in Fig. 3).
func (c *Ctx) Local(n int) {
	for i := 0; i < n; i++ {
		c.stmt()
		c.p.lastEvent = StmtEvent{Proc: c.p, Op: OpLocal}
	}
}
