package sim

import (
	"fmt"
	"iter"

	"repro/internal/mem"
)

// grantKind is the kernel→process message.
type grantKind int

const (
	grantRun   grantKind = iota + 1 // execute one atomic statement
	grantAbort                      // unwind and terminate immediately
)

// yieldKind is the process→kernel message.
type yieldKind int

const (
	yieldStmt     yieldKind = iota + 1 // mid-invocation, requesting next statement
	yieldThinking                      // between invocations, awaiting arrival
	yieldDone                          // program finished (or aborted)
)

// procState is the kernel's view of a process, derived from its last
// yield.
type procState int

const (
	stateThinking procState = iota + 1 // awaiting arrival of next invocation
	stateRunnable                      // mid-invocation, ready to run
	stateDone                          // program finished
	stateCrashed                       // halted permanently by a crash-stop fault
)

// errAborted is the panic value used to unwind a process coroutine when
// the kernel aborts the run.
var errAborted = fmt.Errorf("sim: process aborted")

// Invocation is one object invocation executed by a process: the body
// runs algorithm code against shared memory via the Ctx. Every
// invocation must execute at least one atomic statement.
type Invocation func(c *Ctx)

// Process is a simulated process. Configure it before the first Run with
// AddInvocation; inspect statistics after Run.
//
// The process body runs on a runtime coroutine (iter.Pull): the kernel
// resumes it with resume, the body parks itself with park. Control
// strictly alternates — exactly one of kernel and process is running at
// any time — so a grant is a direct coroutine switch, not a channel
// round-trip through the goroutine scheduler. Data crosses the switch
// through the grant/yKind/yFp fields.
type Process struct {
	id        int
	name      string
	processor int
	pri       int
	origPri   int // priority at AddProcess, restored by System.Reset
	sys       *System
	ctx       *Ctx

	invocations []Invocation
	invPri      []int // per-invocation priority (0 = keep current)

	// Coroutine plumbing. next resumes the body until its park; stop
	// tears it down (its parked yield returns false). yield is the park
	// side, captured once when the coroutine starts.
	next     func() (struct{}, bool)
	stop     func()
	yield    func(struct{}) bool
	started  bool
	stopping bool

	// The kernel↔process mailbox: grant is written by the kernel before
	// resuming; yKind/yFp are written by the body before parking.
	grant grantKind
	yKind yieldKind
	yFp   mem.Footprint

	// Kernel-side scheduling state.
	state       procState
	protected   bool // mid-quantum guarantee after a same-priority preemption
	sinceResume int  // own statements since last same-priority preemption
	preemptions int  // same-priority preemptions suffered

	// pending is the footprint of the process's next statement, known
	// once it has yielded mid-invocation (pendingKnown). A thinking
	// process's first statement is unknown until granted.
	pending      mem.Footprint
	pendingKnown bool

	// obsHash accumulates a stable hash of everything the process has
	// observed from shared memory (op kind, object, value returned or
	// written, one term per statement). Together with the per-process
	// statement counters it stands in for the process's opaque local
	// state in System.Fingerprint: a deterministic invocation body's
	// future behavior is a function of what it has read so far.
	obsHash uint64

	// fpCache/fpDirty memoize this process's XOR contribution to
	// System.Fingerprint; every kernel-side mutation marks the process
	// dirty and Fingerprint recomputes only dirty contributions.
	fpCache uint64
	fpDirty bool

	// Statistics.
	invIndex     int
	stmtsThisInv int64
	stmtsTotal   int64
	maxInvStmts  int64
	// invStmtsLog records the own-statement count of every completed
	// invocation, in order — the raw samples behind the empirical
	// progress-bound measurement mode (check.Options.Measure). Truncated
	// in place by reset, so pooled replays append into retained capacity.
	invStmtsLog []int64

	// lastEvent describes the statement most recently executed; written
	// by the process while it holds the baton, read by the kernel after
	// the baton returns.
	lastEvent StmtEvent

	aborted bool
	crashed bool
	err     error
}

// ID returns the process's index in System.Processes order.
func (p *Process) ID() int { return p.id }

// Name returns the process's diagnostic name.
func (p *Process) Name() string { return p.name }

// Processor returns the index of the processor the process runs on.
func (p *Process) Processor() int { return p.processor }

// Priority returns the process's priority (1..V, V highest).
func (p *Process) Priority() int { return p.pri }

// AddInvocation appends an object invocation to the process's program.
func (p *Process) AddInvocation(inv Invocation) *Process {
	if p.sys.sealed {
		panic("sim: AddInvocation after Run")
	}
	p.invocations = append(p.invocations, inv)
	p.invPri = append(p.invPri, 0)
	return p
}

// AddInvocationPri appends an invocation to run at the given priority,
// supporting the paper's §5 dynamic-priority systems: a process's
// priority may change between invocations but never during one. The
// priority takes effect when the previous invocation completes.
func (p *Process) AddInvocationPri(pri int, inv Invocation) *Process {
	if p.sys.sealed {
		panic("sim: AddInvocationPri after Run")
	}
	if pri < 1 {
		panic(fmt.Sprintf("sim: priority must be >= 1, got %d", pri))
	}
	p.invocations = append(p.invocations, inv)
	p.invPri = append(p.invPri, pri)
	return p
}

// StmtsTotal returns the total statements the process executed.
func (p *Process) StmtsTotal() int64 { return p.stmtsTotal }

// MaxInvStmts returns the maximum statements executed in any single
// completed invocation — the process's worst-case wait-free step bound
// in this run.
func (p *Process) MaxInvStmts() int64 { return p.maxInvStmts }

// WorstInvStmts returns the maximum statements the process executed
// within any single invocation, including an invocation still in
// progress when the run ended (crash, abort, or step limit). This is
// the quantity a wait-freedom bound constrains: a process spinning
// forever never completes its invocation, so MaxInvStmts alone would
// miss it.
func (p *Process) WorstInvStmts() int64 {
	if p.stmtsThisInv > p.maxInvStmts {
		return p.stmtsThisInv
	}
	return p.maxInvStmts
}

// InvStmts returns the own-statement count of every invocation the
// process completed, in program order. The returned slice is the
// process's internal log: read-only, valid until the next Reset. These
// are the per-invocation samples the measurement mode
// (check.Options.Measure) aggregates into empirical progress bounds.
func (p *Process) InvStmts() []int64 { return p.invStmtsLog }

// InflightStmts returns the own-statement count of the invocation in
// progress when the run ended (0 if the process was between
// invocations). A nonzero value on a live process at run end is a
// right-censored progress sample: the invocation had consumed at least
// this many statements without completing — the signature of
// starvation when it dwarfs the completed-invocation distribution.
func (p *Process) InflightStmts() int64 { return p.stmtsThisInv }

// Crashed reports whether the process was halted by a crash-stop fault.
func (p *Process) Crashed() bool { return p.crashed }

// Live reports whether the process has neither finished its program nor
// crashed. Kernel-side state: safe to read from a Chooser or after Run,
// not from algorithm code.
func (p *Process) Live() bool {
	return p.state != stateDone && p.state != stateCrashed
}

// Preemptions returns how many same-priority preemptions the process
// suffered.
func (p *Process) Preemptions() int { return p.preemptions }

// NextFootprint returns the canonical footprint of the statement the
// process will execute when next granted, and whether it is known. It
// is known exactly when the process is parked mid-invocation (state
// runnable, having yielded after a previous statement); a thinking
// process's first statement is unknown until its arrival is granted.
// Kernel-side state: safe to read from a Chooser, not from algorithm
// code.
func (p *Process) NextFootprint() (mem.Footprint, bool) {
	return p.pending, p.pendingKnown && p.state == stateRunnable
}

// CompletedInvocations returns how many invocations the process finished.
func (p *Process) CompletedInvocations() int { return p.invIndex }

// Err returns the panic value, if any, with which the process's program
// failed (nil for clean completion or kernel-initiated abort).
func (p *Process) Err() error { return p.err }

// startCoro launches the process body on a runtime coroutine. The body
// loops so a pooled System can rerun the program after Reset: each pass
// runs the full program, parks with yieldDone, and waits to be resumed
// into the next pass. A torn-down coroutine (yield returned false)
// returns instead of parking again — iter.Pull forbids yielding after
// stop.
func (p *Process) startCoro() {
	p.next, p.stop = iter.Pull(func(yield func(struct{}) bool) {
		p.yield = yield
		for {
			p.runProgram()
			if p.stopping {
				return
			}
			p.yKind = yieldDone
			if !yield(struct{}{}) {
				return
			}
		}
	})
	p.started = true
}

// resume switches control to the process coroutine with the given grant
// and returns the yield it parks with. The first resume of a pass never
// reads the grant (it produces the initial thinking/done yield, matching
// the arrival protocol).
func (p *Process) resume(g grantKind) (yieldKind, mem.Footprint) {
	p.grant = g
	if !p.started {
		p.startCoro()
	}
	if _, ok := p.next(); !ok {
		// The coroutine was torn down (Close); report done so kernel
		// bookkeeping stays consistent.
		return yieldDone, mem.Footprint{}
	}
	return p.yKind, p.yFp
}

// park yields control back to the kernel with the given message and
// returns the grant the kernel resumes with. A false yield means the
// coroutine is being torn down: unwind without parking again.
func (p *Process) park(kind yieldKind, fp mem.Footprint) grantKind {
	p.yKind = kind
	p.yFp = fp
	if !p.yield(struct{}{}) {
		p.stopping = true
		panic(errAborted)
	}
	return p.grant
}

// runProgram executes one full pass of the process's program, converting
// panics into p.err exactly as the goroutine shell did. Kernel-initiated
// aborts (errAborted) unwind silently.
func (p *Process) runProgram() {
	defer func() {
		if r := recover(); r != nil && r != errAborted { //nolint:errorlint // sentinel identity
			p.err = fmt.Errorf("sim: process %s panicked: %v", p.name, r)
		}
	}()
	c := p.ctx
	for i := range p.invocations {
		p.await()
		c.hasGrant = true
		p.invocations[i](c)
		if c.hasGrant {
			panic(fmt.Sprintf("sim: invocation %d of %s executed no statements", i, p.name))
		}
	}
}

// await parks the process as thinking until the kernel grants arrival.
// The grant doubles as permission to execute the first statement of the
// next invocation.
func (p *Process) await() {
	if p.park(yieldThinking, mem.Footprint{}) == grantAbort {
		p.aborted = true
		panic(errAborted)
	}
}

// reset restores the process to its pre-run state for a pooled rerun.
// The coroutine itself needs no work: after any completed Run (normal,
// aborted, or crashed) every started coroutine is parked at its
// top-of-loop yield, ready to run the program again.
func (p *Process) reset() {
	p.state = 0
	p.protected = false
	p.sinceResume = 0
	p.preemptions = 0
	p.pending = mem.Footprint{}
	p.pendingKnown = false
	p.obsHash = 0
	p.fpCache = 0
	p.fpDirty = true
	p.invIndex = 0
	p.stmtsThisInv = 0
	p.stmtsTotal = 0
	p.maxInvStmts = 0
	p.invStmtsLog = p.invStmtsLog[:0]
	p.lastEvent = StmtEvent{}
	p.aborted = false
	p.crashed = false
	p.err = nil
	p.pri = p.origPri
}

// Ctx is a process's handle to shared memory. Each method executes
// exactly the number of atomic statements its paper counterpart does.
// A Ctx is only valid inside the invocation it was passed to.
type Ctx struct {
	p        *Process
	hasGrant bool
}

// ID returns the process identifier (0-based).
func (c *Ctx) ID() int { return c.p.id }

// Now returns the global statement count — a logical timestamp usable
// for history recording (e.g. linearizability checking). It executes no
// statement.
func (c *Ctx) Now() int64 { return c.p.sys.steps }

// Pri returns the process priority (1..V, V highest).
func (c *Ctx) Pri() int { return c.p.pri }

// Processor returns the index of the processor the process runs on.
func (c *Ctx) Processor() int { return c.p.processor }

// stmt parks until the kernel grants one atomic statement. fp is the
// footprint of the access the statement will perform; it travels with
// the yield so the kernel knows every parked process's next access
// before deciding who runs.
func (c *Ctx) stmt(fp mem.Footprint) {
	if c.p.aborted {
		panic(errAborted)
	}
	if c.hasGrant {
		// First statement of the invocation: the arrival grant already
		// covers it, so the footprint was unknown to the kernel when it
		// decided (the executed footprint still reaches the access log
		// via the statement event).
		c.hasGrant = false
		return
	}
	if c.p.park(yieldStmt, fp) == grantAbort {
		c.p.aborted = true
		panic(errAborted)
	}
}

// memDelta folds an object's state-hash change into the system's
// incremental memory fingerprint (call with the hash before and after
// the mutation).
func (c *Ctx) memDelta(before, after uint64) {
	c.p.sys.memFP ^= before ^ after
}

// Read atomically reads register r (one statement).
func (c *Ctx) Read(r *mem.Reg) mem.Word {
	fp := r.Footprint(mem.AccessRead)
	c.stmt(fp)
	v := r.Load()
	c.p.lastEvent = StmtEvent{Proc: c.p, Op: OpRead, Object: r.Name(), Value: v, Fp: fp}
	return v
}

// Write atomically writes v to register r (one statement).
func (c *Ctx) Write(r *mem.Reg, v mem.Word) {
	fp := r.Footprint(mem.AccessWrite)
	c.stmt(fp)
	before := r.StateHash()
	r.Store(v)
	c.memDelta(before, r.StateHash())
	c.p.lastEvent = StmtEvent{Proc: c.p, Op: OpWrite, Object: r.Name(), Value: v, Fp: fp}
}

// CCons invokes C-consensus object o with proposal v (one statement) and
// returns the object's response (the decided value, or ⊥ after the C-th
// invocation).
func (c *Ctx) CCons(o *mem.ConsObject, v mem.Word) mem.Word {
	fp := o.Footprint()
	c.stmt(fp)
	before := o.StateHash()
	out := o.Invoke(v)
	c.memDelta(before, o.StateHash())
	c.p.lastEvent = StmtEvent{Proc: c.p, Op: OpCons, Object: o.Name(), Value: out, Fp: fp}
	return out
}

// CASPrim performs a hardware compare-and-swap on primitive object o
// (one statement). Baseline comparators only; the paper's algorithms use
// nothing stronger than registers and C-consensus objects.
func (c *Ctx) CASPrim(o *mem.CASObject, old, new mem.Word) bool {
	fp := o.Footprint(mem.AccessCons)
	c.stmt(fp)
	before := o.StateHash()
	ok := o.CompareAndSwap(old, new)
	c.memDelta(before, o.StateHash())
	v := mem.Word(0)
	if ok {
		v = 1
	}
	c.p.lastEvent = StmtEvent{Proc: c.p, Op: OpCons, Object: o.Name(), Value: v, Fp: fp}
	return ok
}

// LoadPrim reads primitive CAS object o (one statement).
func (c *Ctx) LoadPrim(o *mem.CASObject) mem.Word {
	fp := o.Footprint(mem.AccessRead)
	c.stmt(fp)
	v := o.Load()
	c.p.lastEvent = StmtEvent{Proc: c.p, Op: OpRead, Object: o.Name(), Value: v, Fp: fp}
	return v
}

// Local executes n counted local statements (no shared access). Use it
// to honor the paper's numbered-statement quantum accounting (e.g. the
// "v := val" in Fig. 3).
func (c *Ctx) Local(n int) {
	fp := mem.Footprint{Cell: -1, Kind: mem.AccessLocal}
	for i := 0; i < n; i++ {
		c.stmt(fp)
		c.p.lastEvent = StmtEvent{Proc: c.p, Op: OpLocal, Fp: fp}
	}
}
