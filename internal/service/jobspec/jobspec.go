// Package jobspec defines the serializable job specifications shared
// by the one-shot CLIs (cmd/checker, cmd/soak) and the job service
// (internal/service, cmd/server): a job is a workload-registry
// reference plus exploration or campaign parameters, and this package
// is the single place that turns one into a check.Builder +
// check.Options or a campaign.Config. Both entry points therefore
// construct byte-identical jobs — a spec submitted over the REST API
// runs exactly what the equivalent CLI flags would, and a spec round-
// trips through JSON unchanged (it is what the service persists in the
// store and what a client POSTs to /jobs).
//
// Durations and sizes use explicit units (milliseconds, MiB) rather
// than time.Duration's nanosecond JSON encoding, so hand-written specs
// stay legible.
package jobspec

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/artifact"
	"repro/internal/campaign"
	"repro/internal/check"
	"repro/internal/sched"
)

// Job kinds.
const (
	KindCheck   = "check"
	KindSoak    = "soak"
	KindLint    = "lint"
	KindMeasure = "measure"
)

// Spec is one submittable job: exactly one of the kind-specific
// payloads is set, matching Kind.
type Spec struct {
	// Kind selects the job type: "check" (schedule-space exploration,
	// cmd/checker's work), "soak" (a durable replay campaign, cmd/soak's
	// work), "lint" (a reprolint static-analysis run, cmd/reprolint's
	// work), or "measure" (an empirical progress-bound measurement
	// campaign, cmd/checker -measure's work).
	Kind string `json:"kind"`
	// Check is the exploration spec (Kind "check").
	Check *Check `json:"check,omitempty"`
	// Soak is the campaign spec (Kind "soak").
	Soak *Soak `json:"soak,omitempty"`
	// Lint is the static-analysis spec (Kind "lint").
	Lint *Lint `json:"lint,omitempty"`
	// Measure is the measurement spec (Kind "measure").
	Measure *Measure `json:"measure,omitempty"`
}

// payloads returns the set payloads and whether the one matching Kind
// is among them.
func (s *Spec) payloads() (n int, matching bool) {
	for _, p := range []struct {
		kind string
		set  bool
	}{
		{KindCheck, s.Check != nil},
		{KindSoak, s.Soak != nil},
		{KindLint, s.Lint != nil},
		{KindMeasure, s.Measure != nil},
	} {
		if p.set {
			n++
			if p.kind == s.Kind {
				matching = true
			}
		}
	}
	return n, matching
}

// Validate checks the spec's shape and its kind-specific payload.
func (s *Spec) Validate() error {
	switch s.Kind {
	case KindCheck, KindSoak, KindLint, KindMeasure:
		if n, ok := s.payloads(); n != 1 || !ok {
			return fmt.Errorf("jobspec: kind %q wants exactly the %s payload", s.Kind, s.Kind)
		}
	case "":
		return fmt.Errorf("jobspec: missing kind (want %q, %q, %q, or %q)", KindCheck, KindSoak, KindLint, KindMeasure)
	default:
		return fmt.Errorf("jobspec: unknown kind %q (want %q, %q, %q, or %q)", s.Kind, KindCheck, KindSoak, KindLint, KindMeasure)
	}
	switch s.Kind {
	case KindCheck:
		return s.Check.Validate()
	case KindSoak:
		return s.Soak.Validate()
	case KindLint:
		return s.Lint.Validate()
	default:
		return s.Measure.Validate()
	}
}

// Describe renders a short human-readable summary of the job.
func (s *Spec) Describe() string {
	switch {
	case s.Check != nil:
		c := s.Check
		return fmt.Sprintf("check %s mode=%s q=%d", c.Meta.Workload, c.Mode, c.Meta.Quantum)
	case s.Soak != nil:
		w := s.Soak.Workload
		if w == "" {
			w = "soakmix"
		}
		return fmt.Sprintf("soak %s runs=%d seed=%d", w, s.Soak.Runs, s.Soak.Seed)
	case s.Lint != nil:
		return "lint " + strings.Join(s.Lint.ResolvedPatterns(), " ")
	case s.Measure != nil:
		m := s.Measure
		return fmt.Sprintf("measure %s model=%s replays=%d", m.Meta.Workload, m.ResolvedModel(), m.ResolvedReplays())
	default:
		return "invalid spec"
	}
}

// Parse decodes and validates a spec from JSON.
func Parse(data []byte) (*Spec, error) {
	s := &Spec{}
	if err := json.Unmarshal(data, s); err != nil {
		return nil, fmt.Errorf("jobspec: decode: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Exploration modes for Check.Mode.
const (
	ModeAll    = "all"
	ModeBudget = "budget"
	ModeFuzz   = "fuzz"
)

// Check specifies one schedule-space exploration over a registered
// workload — the job-shaped form of cmd/checker's flags. Everything
// that defines the exploration's outcome lives here; presentation-only
// concerns (progress printing, wall-clock timeouts, frontier files)
// stay with the caller.
type Check struct {
	// Meta is the workload-registry reference: which system is built
	// and its full configuration, including Meta.WaitFreeBound (the
	// wait-freedom property is part of the job's identity, so it rides
	// in the meta exactly as repro bundles carry it).
	Meta artifact.Meta `json:"meta"`
	// Mode is the exploration strategy: all | budget | fuzz.
	Mode string `json:"mode"`
	// Budget is the context-switch deviation budget (mode "budget").
	Budget int `json:"budget,omitempty"`
	// Seeds is the number of fuzz seeds (mode "fuzz"; 0 = 500).
	Seeds int `json:"seeds,omitempty"`
	// MaxSchedules caps executed schedules (0 = check's default).
	MaxSchedules int `json:"max_schedules,omitempty"`
	// Parallelism is the requested worker count (0 = all CPUs; the
	// service treats it as a cap under its fair-share allocation).
	Parallelism int `json:"parallelism,omitempty"`
	// Reduction names the exploration reduction: none | sleepset |
	// fingerprint | full ("" = none).
	Reduction string `json:"reduction,omitempty"`
	// StopAtFirst stops at the first violation.
	StopAtFirst bool `json:"stop_at_first,omitempty"`
	// Artifacts requests a replayable repro bundle per violation.
	Artifacts bool `json:"artifacts,omitempty"`
	// Minimize shrinks each violation's bundle to a minimal
	// still-failing kernel (implies Artifacts).
	Minimize bool `json:"minimize,omitempty"`
	// ShrinkBudget caps candidate replays per shrunk violation.
	ShrinkBudget int `json:"shrink_budget,omitempty"`
	// RunDeadlineMS bounds each run in wall-clock milliseconds
	// (check.Options.RunDeadline; 0 = off).
	RunDeadlineMS int64 `json:"run_deadline_ms,omitempty"`
	// MemSoftMB is the soft heap ceiling in MiB
	// (check.Options.MemSoftLimit; 0 = off).
	MemSoftMB int64 `json:"mem_soft_mb,omitempty"`
	// Model, mode "fuzz" only, swaps the schedule source for a
	// registered scheduler model (sched.ParseModelSpec grammar, compact
	// or JSON form; "" = the historical seeded random).
	Model string `json:"sched_model,omitempty"`
}

// Validate checks the exploration spec against the workload registry
// and the mode/reduction grammars.
func (c *Check) Validate() error {
	if !artifact.Known(c.Meta.Workload) {
		return fmt.Errorf("jobspec: unknown workload %q (have %v)", c.Meta.Workload, artifact.Workloads())
	}
	switch c.Mode {
	case ModeAll, ModeBudget, ModeFuzz:
	default:
		return fmt.Errorf("jobspec: unknown mode %q (want all|budget|fuzz)", c.Mode)
	}
	if c.Budget < 0 || c.Seeds < 0 || c.MaxSchedules < 0 || c.Parallelism < 0 ||
		c.ShrinkBudget < 0 || c.RunDeadlineMS < 0 || c.MemSoftMB < 0 {
		return fmt.Errorf("jobspec: negative bound in check spec")
	}
	if _, err := check.ParseReduction(c.reduction()); err != nil {
		return fmt.Errorf("jobspec: %w", err)
	}
	if c.Model != "" {
		if c.Mode != ModeFuzz {
			return fmt.Errorf("jobspec: sched_model requires mode %q (tree explorers enumerate decisions, they do not draw)", ModeFuzz)
		}
		if _, err := sched.ParseModelSpec(c.Model); err != nil {
			return fmt.Errorf("jobspec: %w", err)
		}
	}
	return nil
}

func (c *Check) reduction() string {
	if c.Reduction == "" {
		return "none"
	}
	return c.Reduction
}

func (c *Check) seeds() int {
	if c.Seeds <= 0 {
		return 500
	}
	return c.Seeds
}

// Builder resolves the spec's workload to a check.Builder.
func (c *Check) Builder() (check.Builder, error) {
	return check.BuilderFor(c.Meta)
}

// Options assembles the check.Options the spec defines. Caller-side
// concerns — Context, Progress, frontier export/seed — are zero and
// layered on by the CLI or the service.
func (c *Check) Options() (check.Options, error) {
	red, err := check.ParseReduction(c.reduction())
	if err != nil {
		return check.Options{}, fmt.Errorf("jobspec: %w", err)
	}
	opts := check.Options{
		MaxSchedules:  c.MaxSchedules,
		StopAtFirst:   c.StopAtFirst,
		Parallelism:   c.Parallelism,
		WaitFreeBound: c.Meta.WaitFreeBound,
		Reduction:     red,
		RunDeadline:   time.Duration(c.RunDeadlineMS) * time.Millisecond,
		MemSoftLimit:  uint64(c.MemSoftMB) << 20,
	}
	if c.Artifacts || c.Minimize {
		meta := c.Meta
		opts.ArtifactMeta = &meta
		opts.Minimize = c.Minimize
		opts.ShrinkBudget = c.ShrinkBudget
	}
	if c.Model != "" {
		spec, err := sched.ParseModelSpec(c.Model)
		if err != nil {
			return check.Options{}, fmt.Errorf("jobspec: %w", err)
		}
		opts.SchedModel = spec
	}
	return opts, nil
}

// Run dispatches the exploration the spec's mode selects. build and
// opts normally come from Builder and Options, with caller-side fields
// (Context, Progress, frontier) layered on.
func (c *Check) Run(build check.Builder, opts check.Options) *check.Result {
	switch c.Mode {
	case ModeAll:
		return check.ExploreAll(build, opts)
	case ModeBudget:
		return check.ExploreBudget(build, c.Budget, opts)
	default:
		return check.Fuzz(build, c.seeds(), opts)
	}
}

// Durable reports whether the exploration supports exact frontier
// checkpoint/resume (check.Options.ExportFrontier): the tree explorers
// under ReductionNone. Fuzz and reduced explorations run as one
// uninterruptible unit and restart from scratch after a crash.
func (c *Check) Durable() bool {
	return c.Mode != ModeFuzz && c.reduction() == "none"
}

// defaultCrashSeedSalt derives a crash seed from the base seed when
// none is given, matching cmd/soak's historical behavior.
const defaultCrashSeedSalt = 0x5deece66d

// Soak specifies one durable replay campaign — the job-shaped form of
// cmd/soak's flags. The zero Workload is the classic randomized
// soakmix sweep; naming a registered workload pins every run to that
// family with the N/V/Quantum/WaitFreeBound parameters below and only
// the seeded schedule and crash plan varying per run
// (artifact.SeededMeta).
type Soak struct {
	// Workload pins a fixed-workload campaign ("" = soakmix).
	Workload string `json:"workload,omitempty"`
	// N, V, Quantum parameterize a fixed workload (0 = the workload's
	// defaults).
	N       int `json:"n,omitempty"`
	V       int `json:"v,omitempty"`
	Quantum int `json:"quantum,omitempty"`
	// WaitFreeBound fails any run in which a live process exceeds this
	// many of its own statements in one invocation (0 = off).
	WaitFreeBound int64 `json:"waitfree_bound,omitempty"`
	// Runs is the campaign length (0 = unbounded, until stopped).
	Runs int64 `json:"runs,omitempty"`
	// Seed is the campaign's base seed (campaign identity).
	Seed int64 `json:"seed"`
	// CrashSeed seeds crash injection (0 = derive from Seed).
	CrashSeed int64 `json:"crash_seed,omitempty"`
	// MaxCrashes caps injected crash-stop faults per run.
	MaxCrashes int `json:"max_crashes,omitempty"`
	// Parallelism is the requested worker count (0 = all CPUs; a cap
	// under the service's fair share).
	Parallelism int `json:"parallelism,omitempty"`
	// RunDeadlineMS is the per-run watchdog deadline in milliseconds
	// (campaign.Config.RunTimeout; 0 = off).
	RunDeadlineMS int64 `json:"run_deadline_ms,omitempty"`
	// CheckpointEvery is the completed-run interval between checkpoint
	// snapshots (0 = campaign default).
	CheckpointEvery int64 `json:"checkpoint_every,omitempty"`
	// MemSoftMB is the soft heap ceiling in MiB (0 = off).
	MemSoftMB int64 `json:"mem_soft_mb,omitempty"`
	// KeepGoing records violations and continues instead of stopping
	// the campaign at the first one.
	KeepGoing bool `json:"keep_going,omitempty"`
	// Model swaps the campaign's schedule source for a registered
	// scheduler model (sched.ParseModelSpec grammar; "" = the default
	// seeded random). Simple (non-wrapper) specs only: campaign crash
	// injection comes from CrashSeed/MaxCrashes, and a wrapper spec's
	// inner seeds would not vary per run. Part of the campaign
	// identity.
	Model string `json:"sched_model,omitempty"`
}

// Validate checks the campaign spec against the workload registry.
func (s *Soak) Validate() error {
	if s.Workload != "" && !artifact.Known(s.Workload) {
		return fmt.Errorf("jobspec: unknown workload %q (have %v)", s.Workload, artifact.Workloads())
	}
	if s.Runs < 0 || s.MaxCrashes < 0 || s.Parallelism < 0 || s.N < 0 || s.V < 0 ||
		s.Quantum < 0 || s.WaitFreeBound < 0 || s.RunDeadlineMS < 0 ||
		s.CheckpointEvery < 0 || s.MemSoftMB < 0 {
		return fmt.Errorf("jobspec: negative bound in soak spec")
	}
	if s.Model != "" {
		spec, err := sched.ParseModelSpec(s.Model)
		if err != nil {
			return fmt.Errorf("jobspec: %w", err)
		}
		if spec.Inner != nil {
			return fmt.Errorf("jobspec: soak sched_model %q: wrapper specs are not campaign-derivable (use crash_seed/max_crashes for faults)", s.Model)
		}
	}
	return nil
}

// ResolvedCrashSeed returns the crash seed the campaign will actually
// use (deriving the default when CrashSeed is zero).
func (s *Soak) ResolvedCrashSeed() int64 {
	if s.CrashSeed != 0 {
		return s.CrashSeed
	}
	return s.Seed ^ defaultCrashSeedSalt
}

// Config assembles the campaign.Config the spec defines. Caller-side
// concerns — StateDir, ArtifactDir, Stop, Log, Progress — are zero and
// layered on by the CLI or the service.
func (s *Soak) Config() campaign.Config {
	var model *sched.ModelSpec
	if s.Model != "" {
		model, _ = sched.ParseModelSpec(s.Model) // validated by Validate
	}
	return campaign.Config{
		SchedModel: model,
		Runs:            s.Runs,
		BaseSeed:        s.Seed,
		CrashSeed:       s.ResolvedCrashSeed(),
		MaxCrashes:      s.MaxCrashes,
		Workload:        s.Workload,
		N:               s.N,
		V:               s.V,
		Quantum:         s.Quantum,
		WaitFreeBound:   s.WaitFreeBound,
		Parallel:        s.Parallelism,
		RunTimeout:      time.Duration(s.RunDeadlineMS) * time.Millisecond,
		CheckpointEvery: s.CheckpointEvery,
		MemSoftLimit:    uint64(s.MemSoftMB) << 20,
		StopOnViolation: !s.KeepGoing,
	}
}

// Lint specifies one reprolint static-analysis run — the job-shaped
// form of cmd/reprolint's flags. The run lints the server's own source
// tree (the module enclosing the server process's working directory):
// the farm is self-hosting its discipline checks, so a lint job's
// output is a property of the checked-out tree, not of anything the
// spec can point elsewhere. The service stores the SARIF log and the
// derived bounds report as content-addressed artifacts (job artifact
// indices 0 and 1).
type Lint struct {
	// Patterns selects package directories, in cmd/reprolint's pattern
	// grammar: ".", "./...", "./dir", or "./dir/..." (empty = ["./..."]).
	Patterns []string `json:"patterns,omitempty"`
	// NoTests excludes _test.go files from analysis.
	NoTests bool `json:"no_tests,omitempty"`
	// Parallelism is the requested analysis worker count (0 = all CPUs;
	// a cap under the service's fair share).
	Parallelism int `json:"parallelism,omitempty"`
}

// Validate checks the lint spec's pattern grammar.
func (l *Lint) Validate() error {
	for _, p := range l.Patterns {
		if err := analysis.ValidPattern(p); err != nil {
			return fmt.Errorf("jobspec: %w", err)
		}
	}
	if l.Parallelism < 0 {
		return fmt.Errorf("jobspec: negative bound in lint spec")
	}
	return nil
}

// ResolvedPatterns returns the patterns the run will use, applying the
// whole-tree default.
func (l *Lint) ResolvedPatterns() []string {
	if len(l.Patterns) == 0 {
		return []string{"./..."}
	}
	return l.Patterns
}

// SoakFromIdentity reconstructs the soak spec a persisted campaign
// state directory encodes (campaign.Identity carries the seeds and
// workload parameters), so `soak -resume <dir>` and the service's
// resume-on-boot rebuild exactly the campaign that was interrupted.
func SoakFromIdentity(id campaign.Identity) *Soak {
	return &Soak{
		Workload:      id.Workload,
		N:             id.N,
		V:             id.V,
		Quantum:       id.Quantum,
		WaitFreeBound: id.WaitFreeBound,
		Seed:          id.BaseSeed,
		CrashSeed:     id.CrashSeed,
		MaxCrashes:    id.MaxCrashes,
		Model:         id.SchedModel,
	}
}

// DefaultMeasureReplays is the measurement campaign length when the
// spec leaves Replays zero.
const DefaultMeasureReplays = 2000

// Measure specifies one empirical progress-bound measurement campaign
// — the job-shaped form of cmd/checker's -measure flag. The job fuzzes
// Replays runs of the workload under the scheduler model and reduces
// every run's per-invocation statement counts to a
// check.ProgressStats distribution (the stored artifact). Violations
// (e.g. Meta.WaitFreeBound hits) are counted but do not fail the job:
// a negative control exceeding its bound is the measurement working,
// not the farm failing.
type Measure struct {
	// Meta is the workload-registry reference, including the optional
	// declared bound to count violations against.
	Meta artifact.Meta `json:"meta"`
	// Model is the scheduler model to measure under
	// (sched.ParseModelSpec grammar; "" = "uniform").
	Model string `json:"sched_model,omitempty"`
	// Replays is the number of measured runs (0 = 2000).
	Replays int `json:"replays,omitempty"`
	// Parallelism is the requested worker count (0 = all CPUs; a cap
	// under the service's fair share).
	Parallelism int `json:"parallelism,omitempty"`
	// RunDeadlineMS bounds each run in wall-clock milliseconds
	// (0 = off).
	RunDeadlineMS int64 `json:"run_deadline_ms,omitempty"`
}

// Validate checks the measurement spec against the workload and model
// registries.
func (m *Measure) Validate() error {
	if !artifact.Known(m.Meta.Workload) {
		return fmt.Errorf("jobspec: unknown workload %q (have %v)", m.Meta.Workload, artifact.Workloads())
	}
	if m.Replays < 0 || m.Parallelism < 0 || m.RunDeadlineMS < 0 {
		return fmt.Errorf("jobspec: negative bound in measure spec")
	}
	if _, err := sched.ParseModelSpec(m.ResolvedModel()); err != nil {
		return fmt.Errorf("jobspec: %w", err)
	}
	return nil
}

// ResolvedModel returns the model spec string the job will use,
// applying the uniform default.
func (m *Measure) ResolvedModel() string {
	if m.Model == "" {
		return "uniform"
	}
	return m.Model
}

// ResolvedReplays returns the measured run count, applying the
// default.
func (m *Measure) ResolvedReplays() int {
	if m.Replays <= 0 {
		return DefaultMeasureReplays
	}
	return m.Replays
}

// Builder resolves the spec's workload to a check.Builder.
func (m *Measure) Builder() (check.Builder, error) {
	return check.BuilderFor(m.Meta)
}

// Options assembles the check.Options the measurement defines.
// Caller-side concerns — Context, Progress — are layered on by the CLI
// or the service.
func (m *Measure) Options() (check.Options, error) {
	spec, err := sched.ParseModelSpec(m.ResolvedModel())
	if err != nil {
		return check.Options{}, fmt.Errorf("jobspec: %w", err)
	}
	return check.Options{
		MaxSchedules:  m.ResolvedReplays(),
		Parallelism:   m.Parallelism,
		WaitFreeBound: m.Meta.WaitFreeBound,
		RunDeadline:   time.Duration(m.RunDeadlineMS) * time.Millisecond,
		SchedModel:    spec,
		Measure:       true,
	}, nil
}

// Run executes the measurement sweep.
func (m *Measure) Run(build check.Builder, opts check.Options) *check.Result {
	return check.Fuzz(build, m.ResolvedReplays(), opts)
}
