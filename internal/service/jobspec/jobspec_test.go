package jobspec_test

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/campaign"
	"repro/internal/check"
	"repro/internal/service/jobspec"
)

func TestSpecValidate(t *testing.T) {
	good := &jobspec.Spec{Kind: jobspec.KindCheck, Check: &jobspec.Check{
		Meta: artifact.Meta{Workload: "unicons", N: 2, V: 1, Quantum: 8}, Mode: jobspec.ModeAll}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []*jobspec.Spec{
		{},
		{Kind: "mystery"},
		{Kind: jobspec.KindCheck},
		{Kind: jobspec.KindSoak},
		{Kind: jobspec.KindCheck, Check: good.Check, Soak: &jobspec.Soak{}},
		{Kind: jobspec.KindCheck, Check: &jobspec.Check{Meta: artifact.Meta{Workload: "nope"}, Mode: "all"}},
		{Kind: jobspec.KindCheck, Check: &jobspec.Check{Meta: good.Check.Meta, Mode: "mystery"}},
		{Kind: jobspec.KindCheck, Check: &jobspec.Check{Meta: good.Check.Meta, Mode: "all", Reduction: "mystery"}},
		{Kind: jobspec.KindCheck, Check: &jobspec.Check{Meta: good.Check.Meta, Mode: "all", Budget: -1}},
		{Kind: jobspec.KindSoak, Soak: &jobspec.Soak{Workload: "nope"}},
		{Kind: jobspec.KindSoak, Soak: &jobspec.Soak{Runs: -1}},
		{Kind: jobspec.KindLint},
		{Kind: jobspec.KindLint, Lint: &jobspec.Lint{}, Check: good.Check},
		{Kind: jobspec.KindLint, Lint: &jobspec.Lint{Patterns: []string{"internal/mem"}}},
		{Kind: jobspec.KindLint, Lint: &jobspec.Lint{Parallelism: -1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	orig := &jobspec.Spec{Kind: jobspec.KindSoak, Soak: &jobspec.Soak{
		Workload: "lockcounter", N: 2, V: 2, Quantum: 4, WaitFreeBound: 60,
		Runs: 100, Seed: 7, MaxCrashes: 1, KeepGoing: true}}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := jobspec.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if *got.Soak != *orig.Soak || got.Kind != orig.Kind {
		t.Fatalf("round trip mismatch: %+v != %+v", got.Soak, orig.Soak)
	}
	if _, err := jobspec.Parse([]byte("{not json")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := jobspec.Parse([]byte(`{"kind":"check"}`)); err == nil {
		t.Fatal("kind/payload mismatch accepted")
	}
}

func TestCheckOptionsMapping(t *testing.T) {
	spec := &jobspec.Check{
		Meta: artifact.Meta{Workload: "unicons", N: 2, V: 1, Quantum: 8, WaitFreeBound: 40},
		Mode: jobspec.ModeAll, MaxSchedules: 123, Parallelism: 3, Reduction: "full",
		StopAtFirst: true, Minimize: true, ShrinkBudget: 9,
		RunDeadlineMS: 1500, MemSoftMB: 2,
	}
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opts.MaxSchedules != 123 || opts.Parallelism != 3 || !opts.StopAtFirst {
		t.Fatalf("basic fields not mapped: %+v", opts)
	}
	if opts.WaitFreeBound != 40 {
		t.Fatalf("WaitFreeBound not taken from Meta: %d", opts.WaitFreeBound)
	}
	if opts.Reduction != check.ReductionFull {
		t.Fatalf("reduction not mapped: %v", opts.Reduction)
	}
	if opts.RunDeadline != 1500*time.Millisecond || opts.MemSoftLimit != 2<<20 {
		t.Fatalf("unit conversions wrong: deadline %v, mem %d", opts.RunDeadline, opts.MemSoftLimit)
	}
	if opts.ArtifactMeta == nil || !opts.Minimize || opts.ShrinkBudget != 9 {
		t.Fatalf("minimize plumbing not mapped: %+v", opts)
	}
	if opts.ArtifactMeta.WaitFreeBound != 40 {
		t.Fatal("artifact meta lost the wait-free bound")
	}
}

func TestCheckDurable(t *testing.T) {
	meta := artifact.Meta{Workload: "unicons", N: 2, V: 1, Quantum: 8}
	cases := []struct {
		mode, red string
		want      bool
	}{
		{jobspec.ModeAll, "", true},
		{jobspec.ModeAll, "none", true},
		{jobspec.ModeBudget, "", true},
		{jobspec.ModeFuzz, "", false},
		{jobspec.ModeAll, "full", false},
		{jobspec.ModeBudget, "sleepset", false},
	}
	for _, c := range cases {
		spec := &jobspec.Check{Meta: meta, Mode: c.mode, Reduction: c.red}
		if got := spec.Durable(); got != c.want {
			t.Errorf("Durable(mode=%s, reduction=%q) = %v, want %v", c.mode, c.red, got, c.want)
		}
	}
}

func TestSoakConfigAndIdentity(t *testing.T) {
	spec := &jobspec.Soak{Workload: "lockcounter", N: 2, V: 2, Quantum: 4, WaitFreeBound: 60,
		Runs: 50, Seed: 11, MaxCrashes: 1, KeepGoing: true}
	if got, want := spec.ResolvedCrashSeed(), int64(11)^0x5deece66d; got != want {
		t.Fatalf("derived crash seed %d, want %d", got, want)
	}
	cfg := spec.Config()
	if cfg.BaseSeed != 11 || cfg.CrashSeed != spec.ResolvedCrashSeed() || cfg.MaxCrashes != 1 {
		t.Fatalf("seeds not mapped: %+v", cfg)
	}
	if cfg.Workload != "lockcounter" || cfg.N != 2 || cfg.V != 2 || cfg.Quantum != 4 || cfg.WaitFreeBound != 60 {
		t.Fatalf("workload params not mapped: %+v", cfg)
	}
	if cfg.StopOnViolation {
		t.Fatal("KeepGoing should clear StopOnViolation")
	}

	// The identity a durable campaign persists must reconstruct the spec.
	id := campaign.Identity{BaseSeed: 11, CrashSeed: spec.ResolvedCrashSeed(), MaxCrashes: 1,
		Workload: "lockcounter", N: 2, V: 2, Quantum: 4, WaitFreeBound: 60}
	got := jobspec.SoakFromIdentity(id)
	if got.Workload != spec.Workload || got.N != spec.N || got.V != spec.V ||
		got.Quantum != spec.Quantum || got.WaitFreeBound != spec.WaitFreeBound ||
		got.Seed != spec.Seed || got.CrashSeed != spec.ResolvedCrashSeed() || got.MaxCrashes != spec.MaxCrashes {
		t.Fatalf("identity round trip mismatch: %+v", got)
	}
}

func TestLintSpec(t *testing.T) {
	empty := &jobspec.Spec{Kind: jobspec.KindLint, Lint: &jobspec.Lint{}}
	if err := empty.Validate(); err != nil {
		t.Fatalf("empty lint spec rejected: %v", err)
	}
	if got := empty.Lint.ResolvedPatterns(); len(got) != 1 || got[0] != "./..." {
		t.Fatalf("default patterns = %v, want [./...]", got)
	}
	if got := empty.Describe(); got != "lint ./..." {
		t.Fatalf("Describe() = %q", got)
	}
	scoped := &jobspec.Spec{Kind: jobspec.KindLint, Lint: &jobspec.Lint{
		Patterns: []string{"./internal/mem", "./internal/sim/..."}, NoTests: true}}
	if err := scoped.Validate(); err != nil {
		t.Fatalf("scoped lint spec rejected: %v", err)
	}
	data, err := json.Marshal(scoped)
	if err != nil {
		t.Fatal(err)
	}
	got, err := jobspec.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != jobspec.KindLint || got.Lint == nil || !got.Lint.NoTests ||
		len(got.Lint.Patterns) != 2 || got.Lint.Patterns[1] != "./internal/sim/..." {
		t.Fatalf("round trip mismatch: %+v", got.Lint)
	}
}

func TestExplicitCrashSeedWins(t *testing.T) {
	spec := &jobspec.Soak{Seed: 3, CrashSeed: 99}
	if spec.ResolvedCrashSeed() != 99 {
		t.Fatal("explicit crash seed overridden")
	}
}
