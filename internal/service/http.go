package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/service/jobspec"
)

// maxBodyBytes bounds request bodies: job specs and bench reports are
// small JSON documents, so anything bigger is a client error.
const maxBodyBytes = 1 << 20

// Handler returns the service's REST API:
//
//	POST   /jobs                    submit a jobspec.Spec          → 201 {"id": ...}
//	GET    /jobs                    list job statuses
//	GET    /jobs/{id}               one job's status
//	GET    /jobs/{id}/events        stream progress events (NDJSON, ?since=N)
//	GET    /jobs/{id}/artifacts/{n} fetch the job's n-th artifact (0-based)
//	DELETE /jobs/{id}               cancel (checkpointing progress) → 202
//	GET    /artifacts               list repro-bundle keys
//	GET    /artifacts/{key}         fetch a repro bundle by content key
//	GET    /bench                   the appended bench history
//	POST   /bench                   append one bench report
//	GET    /healthz                 liveness + job counts
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/artifacts/{n}", s.handleJobArtifact)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /artifacts", s.handleArtifacts)
	mux.HandleFunc("GET /artifacts/{key}", s.handleArtifact)
	mux.HandleFunc("GET /bench", s.handleBenchGet)
	mux.HandleFunc("POST /bench", s.handleBenchPost)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"encode"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

// writeError maps a service error to its HTTP status.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownJob):
		code = http.StatusNotFound
	case errors.Is(err, ErrTerminal):
		code = http.StatusConflict
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrStopping):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "read body: " + err.Error()})
		return
	}
	spec, err := jobspec.Parse(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	id, err := s.Submit(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": id, "state": StateQueued})
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.Cancel(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": r.PathValue("id"), "state": "cancelling"})
}

// handleEvents streams a job's events as NDJSON: one Event per line,
// flushed as they happen, starting after ?since=N (default 0 = from
// the beginning of the retained window). The stream ends when the job
// is terminal and fully delivered, the client disconnects, or the
// server shuts down.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	log, err := s.Events(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	since := int64(0)
	if q := r.URL.Query().Get("since"); q != "" {
		n, err := strconv.ParseInt(q, 10, 64)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad since %q", q)})
			return
		}
		since = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		evs, wake, done := log.after(since)
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				return
			}
			since = e.Seq
		}
		if flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		case <-s.shutdown:
			return
		}
	}
}

// handleJobArtifact resolves a job's n-th artifact key (the order the
// job produced them: violation bundles for check/soak jobs; SARIF log
// then bounds report for lint jobs) and serves the stored content —
// addressing by position spares clients a status fetch when the layout
// is fixed, as it is for lint jobs.
func (s *Service) handleJobArtifact(w http.ResponseWriter, r *http.Request) {
	st, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil || n < 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("bad artifact index %q", r.PathValue("n"))})
		return
	}
	if n >= len(st.Artifacts) {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": fmt.Sprintf("job %s has %d artifacts", st.ID, len(st.Artifacts))})
		return
	}
	data, err := s.st.Artifact(st.Artifacts[n])
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if data == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "artifact " + st.Artifacts[n] + " missing from store"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Service) handleArtifacts(w http.ResponseWriter, r *http.Request) {
	keys, err := s.st.ArtifactKeys()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"artifacts": keys})
}

func (s *Service) handleArtifact(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	data, err := s.st.Artifact(key)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if data == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown artifact " + key})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Service) handleBenchGet(w http.ResponseWriter, r *http.Request) {
	data, err := s.st.BenchHistory()
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Service) handleBenchPost(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "read body: " + err.Error()})
		return
	}
	if err := s.st.AppendBench(body); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "appended"})
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	queued := len(s.queue)
	total := len(s.jobs)
	stopping := s.stopping
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok": !stopping, "jobs": total, "queued": queued,
	})
}
