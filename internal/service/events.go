package service

import (
	"sync"
)

// Event is one entry in a job's progress stream. Events carry sequence
// numbers, not wall-clock timestamps: the stream is a deterministic
// record of what the job did, and `GET /jobs/{id}/events?since=N`
// resumes it from any point.
type Event struct {
	// Seq is the event's position in the job's stream (monotone from 1).
	Seq int64 `json:"seq"`
	// Type classifies the event: state | progress | leg | violation |
	// artifact | log.
	Type string `json:"type"`
	// Text is the human-readable payload.
	Text string `json:"text"`
}

// eventCap bounds the retained tail of a job's event stream; older
// events are dropped from the front (their sequence numbers remain
// burned, so a late subscriber can detect the gap).
const eventCap = 4096

// eventLog is an append-only, bounded, subscribable event stream. Each
// append wakes every waiting subscriber by closing the current wake
// channel and installing a fresh one — subscribers re-snapshot and wait
// on the new channel, so no subscriber can miss an event or block an
// appender.
type eventLog struct {
	mu     sync.Mutex
	base   int64 // seq of events[0] minus 1 (seqs start at 1)
	events []Event
	wake   chan struct{}
	closed bool
}

func newEventLog() *eventLog {
	return &eventLog{wake: make(chan struct{})}
}

// append adds one event and wakes subscribers. Appends after close are
// dropped (the job is terminal; nothing meaningful can follow).
func (l *eventLog) append(typ, text string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	seq := l.base + int64(len(l.events)) + 1
	l.events = append(l.events, Event{Seq: seq, Type: typ, Text: text})
	if len(l.events) > eventCap {
		drop := len(l.events) - eventCap
		l.events = append(l.events[:0], l.events[drop:]...)
		l.base += int64(drop)
	}
	close(l.wake)
	l.wake = make(chan struct{})
}

// close marks the stream complete and wakes subscribers one last time.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.wake)
	l.wake = make(chan struct{})
}

// after returns the retained events with Seq > since, the channel that
// will be closed on the next append, and whether the stream is
// complete. A subscriber loops: deliver the batch, then wait on wake
// unless done.
func (l *eventLog) after(since int64) (evs []Event, wake <-chan struct{}, done bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.events {
		if e.Seq > since {
			evs = append(evs, e)
		}
	}
	return evs, l.wake, l.closed
}
