package service_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/service"
	"repro/internal/store"
)

// newFarm builds a service + HTTP test server over a fresh store.
func newFarm(t *testing.T, cfg service.Config) (*service.Service, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil {
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
	}
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

// doJSON issues a request and decodes the JSON response.
func doJSON(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]any{}
	if len(data) > 0 {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("%s %s: non-JSON response %q", method, url, data)
		}
	}
	return resp.StatusCode, out
}

// waitJob polls a job's status until pred accepts it.
func waitJob(t *testing.T, svc *service.Service, id string, what string, pred func(service.Status) bool) service.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := svc.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s; last status %+v", id, what, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func isTerminal(st service.Status) bool {
	switch st.State {
	case service.StateCancelled, service.StateDone, service.StateFailed, service.StateError:
		return true
	}
	return false
}

const uniconsAll = `{"kind":"check","check":{"meta":{"workload":"unicons","n":2,"v":1,"quantum":8,"max_steps":262144},"mode":"all"}}`

func TestSubmitAndCompleteCheckJob(t *testing.T) {
	svc, ts := newFarm(t, service.Config{GlobalWorkers: 1, MaxActiveJobs: 1, LegSchedules: 50})
	defer svc.Stop()
	code, resp := doJSON(t, "POST", ts.URL+"/jobs", uniconsAll)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %v", code, resp)
	}
	id := resp["id"].(string)
	if !store.ValidJobID(id) {
		t.Fatalf("bad job id %q", id)
	}
	st := waitJob(t, svc, id, "terminal", isTerminal)
	// unicons N=2 Q=8 is the paper's correct configuration: the full
	// 114-schedule space is clean, split across 50-schedule legs.
	if st.State != service.StateDone || st.Schedules != 114 || st.Violations != 0 || st.Legs < 2 {
		t.Fatalf("unexpected terminal status: %+v", st)
	}
	code, got := doJSON(t, "GET", ts.URL+"/jobs/"+id, "")
	if code != http.StatusOK || got["state"] != service.StateDone {
		t.Fatalf("GET job: %d %v", code, got)
	}
	code, list := doJSON(t, "GET", ts.URL+"/jobs", "")
	if code != http.StatusOK || len(list["jobs"].([]any)) != 1 {
		t.Fatalf("GET jobs: %d %v", code, list)
	}
}

func TestSubmitRejections(t *testing.T) {
	svc, ts := newFarm(t, service.Config{})
	defer svc.Stop()
	cases := []string{
		`{not json`,
		`{"kind":"mystery"}`,
		`{"kind":"check"}`,
		`{"kind":"check","check":{"meta":{"workload":"nope"},"mode":"all"}}`,
		`{"kind":"check","check":{"meta":{"workload":"unicons","quantum":8},"mode":"mystery"}}`,
		`{"kind":"soak","soak":{"workload":"nope","seed":1}}`,
	}
	for _, body := range cases {
		code, resp := doJSON(t, "POST", ts.URL+"/jobs", body)
		if code != http.StatusBadRequest {
			t.Errorf("submit %q: code %d (%v), want 400", body, code, resp)
		}
	}
	if jobs := svc.Jobs(); len(jobs) != 0 {
		t.Fatalf("rejected submissions created jobs: %v", jobs)
	}
}

func TestUnknownJobRoutes(t *testing.T) {
	svc, ts := newFarm(t, service.Config{})
	defer svc.Stop()
	for _, route := range []struct{ method, path string }{
		{"GET", "/jobs/job-999999"},
		{"GET", "/jobs/not-an-id"},
		{"GET", "/jobs/job-999999/events"},
		{"DELETE", "/jobs/job-999999"},
	} {
		code, _ := doJSON(t, route.method, ts.URL+route.path, "")
		if code != http.StatusNotFound {
			t.Errorf("%s %s: code %d, want 404", route.method, route.path, code)
		}
	}
}

func TestCancelLifecycle(t *testing.T) {
	svc, ts := newFarm(t, service.Config{GlobalWorkers: 1, MaxActiveJobs: 1})
	defer svc.Stop()
	// An unbounded soak runs until stopped — the deterministic way to
	// have a job alive when the cancel lands.
	code, resp := doJSON(t, "POST", ts.URL+"/jobs", `{"kind":"soak","soak":{"runs":0,"seed":1}}`)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %v", code, resp)
	}
	id := resp["id"].(string)
	waitJob(t, svc, id, "running", func(st service.Status) bool { return st.State == service.StateRunning })
	code, _ = doJSON(t, "DELETE", ts.URL+"/jobs/"+id, "")
	if code != http.StatusAccepted {
		t.Fatalf("cancel running job: code %d, want 202", code)
	}
	st := waitJob(t, svc, id, "cancelled", isTerminal)
	if st.State != service.StateCancelled {
		t.Fatalf("cancelled job ended as %s", st.State)
	}
	// Cancelling a terminal job conflicts.
	code, _ = doJSON(t, "DELETE", ts.URL+"/jobs/"+id, "")
	if code != http.StatusConflict {
		t.Fatalf("cancel terminal job: code %d, want 409", code)
	}
}

func TestQueueBoundsAndRejection(t *testing.T) {
	svc, ts := newFarm(t, service.Config{GlobalWorkers: 1, MaxActiveJobs: 1, QueueDepth: 1})
	defer svc.Stop()
	soak := `{"kind":"soak","soak":{"runs":0,"seed":%d}}`
	// Job 1 occupies the single run slot.
	code, resp := doJSON(t, "POST", ts.URL+"/jobs", fmt.Sprintf(soak, 1))
	if code != http.StatusCreated {
		t.Fatalf("submit 1: %d %v", code, resp)
	}
	id1 := resp["id"].(string)
	waitJob(t, svc, id1, "running", func(st service.Status) bool { return st.State == service.StateRunning })
	// Job 2 is picked up by the dispatcher, which then blocks waiting
	// for the slot; wait until it has left the queue.
	code, resp = doJSON(t, "POST", ts.URL+"/jobs", fmt.Sprintf(soak, 2))
	if code != http.StatusCreated {
		t.Fatalf("submit 2: %d %v", code, resp)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, health := doJSON(t, "GET", ts.URL+"/healthz", "")
		if code != http.StatusOK {
			t.Fatalf("healthz: %d", code)
		}
		if health["queued"].(float64) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dispatcher never drained the queue")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Job 3 fills the queue (the dispatcher is blocked on the slot and
	// cannot pop it); job 4 must bounce with 503.
	code, _ = doJSON(t, "POST", ts.URL+"/jobs", fmt.Sprintf(soak, 3))
	if code != http.StatusCreated {
		t.Fatalf("submit 3: %d", code)
	}
	code, resp = doJSON(t, "POST", ts.URL+"/jobs", fmt.Sprintf(soak, 4))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit over full queue: code %d (%v), want 503", code, resp)
	}
}

func TestEventsStreamAndSinceParam(t *testing.T) {
	svc, ts := newFarm(t, service.Config{GlobalWorkers: 1, MaxActiveJobs: 1, LegSchedules: 50})
	defer svc.Stop()
	_, resp := doJSON(t, "POST", ts.URL+"/jobs", uniconsAll)
	id := resp["id"].(string)
	waitJob(t, svc, id, "terminal", isTerminal)

	// A terminal job's stream is complete: the handler returns it whole
	// and closes.
	httpResp, err := http.Get(ts.URL + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if ct := httpResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var events []service.Event
	sc := bufio.NewScanner(httpResp.Body)
	for sc.Scan() {
		var e service.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if len(events) < 3 {
		t.Fatalf("only %d events", len(events))
	}
	for i, e := range events {
		if e.Seq != int64(i)+1 {
			t.Fatalf("event %d has seq %d; stream must be dense from 1", i, e.Seq)
		}
	}
	last := events[len(events)-1]
	if last.Type != "state" || !strings.HasPrefix(last.Text, service.StateDone) {
		t.Fatalf("last event %+v, want terminal state", last)
	}

	// ?since resumes mid-stream.
	httpResp2, err := http.Get(fmt.Sprintf("%s/jobs/%s/events?since=%d", ts.URL, id, events[1].Seq))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp2.Body.Close()
	rest, err := io.ReadAll(httpResp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(string(rest)), "\n") + 1
	if lines != len(events)-2 {
		t.Fatalf("since=%d returned %d events, want %d", events[1].Seq, lines, len(events)-2)
	}

	code, _ := doJSON(t, "GET", ts.URL+"/jobs/"+id+"/events?since=banana", "")
	if code != http.StatusBadRequest {
		t.Fatalf("bad since: code %d, want 400", code)
	}
}

func TestArtifactEndpoints(t *testing.T) {
	svc, ts := newFarm(t, service.Config{GlobalWorkers: 1, MaxActiveJobs: 1})
	defer svc.Stop()
	// A short lockcounter soak under a wait-free bound reliably yields
	// violations, whose bundles land in the content store.
	body := `{"kind":"soak","soak":{"workload":"lockcounter","n":2,"v":2,"quantum":4,"waitfree_bound":60,"runs":20,"seed":7,"keep_going":true}}`
	code, resp := doJSON(t, "POST", ts.URL+"/jobs", body)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %v", code, resp)
	}
	id := resp["id"].(string)
	st := waitJob(t, svc, id, "terminal", isTerminal)
	if st.State != service.StateFailed || len(st.Artifacts) == 0 {
		t.Fatalf("lockcounter soak: %+v, want failed with artifacts", st)
	}
	code, list := doJSON(t, "GET", ts.URL+"/artifacts", "")
	if code != http.StatusOK || len(list["artifacts"].([]any)) == 0 {
		t.Fatalf("artifact list: %d %v", code, list)
	}
	key := st.Artifacts[0]
	code, bundle := doJSON(t, "GET", ts.URL+"/artifacts/"+key, "")
	if code != http.StatusOK {
		t.Fatalf("artifact fetch: %d", code)
	}
	if meta, ok := bundle["meta"].(map[string]any); !ok || meta["workload"] != "lockcounter" {
		t.Fatalf("artifact bundle meta: %v", bundle["meta"])
	}
	code, _ = doJSON(t, "GET", ts.URL+"/artifacts/0000000000000000000000000000000000000000000000000000000000000000", "")
	if code != http.StatusNotFound {
		t.Fatalf("unknown artifact: code %d, want 404", code)
	}
	code, _ = doJSON(t, "GET", ts.URL+"/artifacts/not-a-key", "")
	if code != http.StatusBadRequest {
		t.Fatalf("malformed artifact key: code %d, want 400", code)
	}
}

// TestLintJobAndArtifactRoute runs a lint job over one small package
// and pins the artifact layout the spec promises: index 0 is the SARIF
// log, index 1 the derived bounds report, both served by the
// positional GET /jobs/{id}/artifacts/{n} route.
func TestLintJobAndArtifactRoute(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks packages from source; skipped in -short")
	}
	svc, ts := newFarm(t, service.Config{GlobalWorkers: 1, MaxActiveJobs: 1})
	defer svc.Stop()
	code, resp := doJSON(t, "POST", ts.URL+"/jobs", `{"kind":"lint","lint":{"patterns":["./internal/mem"]}}`)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %v", code, resp)
	}
	id := resp["id"].(string)
	st := waitJob(t, svc, id, "terminal", isTerminal)
	if st.State != service.StateDone || st.Violations != 0 {
		t.Fatalf("lint job over a clean package: %+v, want done with no findings", st)
	}
	if len(st.Artifacts) != 2 {
		t.Fatalf("lint job stored %d artifacts, want 2 (sarif, bounds)", len(st.Artifacts))
	}
	code, sarif := doJSON(t, "GET", ts.URL+"/jobs/"+id+"/artifacts/0", "")
	if code != http.StatusOK || sarif["version"] != "2.1.0" {
		t.Fatalf("artifact 0: %d %v, want a SARIF 2.1.0 log", code, sarif)
	}
	code, bounds := doJSON(t, "GET", ts.URL+"/jobs/"+id+"/artifacts/1", "")
	if code != http.StatusOK {
		t.Fatalf("artifact 1: %d", code)
	}
	if _, ok := bounds["ops"]; !ok {
		t.Fatalf("artifact 1 is not a bounds report: %v", bounds)
	}
	// Route error grammar: out of range is 404, malformed index is 400,
	// unknown job is 404.
	code, _ = doJSON(t, "GET", ts.URL+"/jobs/"+id+"/artifacts/2", "")
	if code != http.StatusNotFound {
		t.Fatalf("artifact out of range: code %d, want 404", code)
	}
	code, _ = doJSON(t, "GET", ts.URL+"/jobs/"+id+"/artifacts/banana", "")
	if code != http.StatusBadRequest {
		t.Fatalf("malformed artifact index: code %d, want 400", code)
	}
	code, _ = doJSON(t, "GET", ts.URL+"/jobs/job-999999/artifacts/0", "")
	if code != http.StatusNotFound {
		t.Fatalf("unknown job artifact: code %d, want 404", code)
	}
}

// TestMeasureJobEndToEnd drives a measurement job through the farm:
// jobspec submit → service runner → stored progress-distribution
// artifact. The lockcounter negative control under a declared bound
// exceeds it (counted in Violations) but still finishes Done — a
// measurement is an observation, not a check.
func TestMeasureJobEndToEnd(t *testing.T) {
	svc, ts := newFarm(t, service.Config{GlobalWorkers: 2, MaxActiveJobs: 1})
	defer svc.Stop()
	body := `{"kind":"measure","measure":{"meta":{"workload":"lockcounter","n":2,"v":2,"quantum":2,"max_steps":2000,"waitfree_bound":200},"sched_model":"uniform:seed=1","replays":200}}`
	code, resp := doJSON(t, "POST", ts.URL+"/jobs", body)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %v", code, resp)
	}
	id := resp["id"].(string)
	st := waitJob(t, svc, id, "terminal", isTerminal)
	if st.State != service.StateDone {
		t.Fatalf("measure job: %+v, want done despite over-bound runs", st)
	}
	if st.Violations == 0 {
		t.Fatalf("lockcounter under bound 200 recorded no over-bound runs: %+v", st)
	}
	if len(st.Artifacts) != 1 {
		t.Fatalf("measure job stored %d artifacts, want 1 (progress report)", len(st.Artifacts))
	}
	code, prog := doJSON(t, "GET", ts.URL+"/jobs/"+id+"/artifacts/0", "")
	if code != http.StatusOK {
		t.Fatalf("artifact 0: %d", code)
	}
	if runs, ok := prog["runs"].(float64); !ok || int(runs) != 200 {
		t.Fatalf("progress report runs = %v, want 200 (report: %v)", prog["runs"], prog)
	}
	for _, field := range []string{"samples", "p50", "p99", "max", "hist"} {
		if _, ok := prog[field]; !ok {
			t.Errorf("progress report missing %q: %v", field, prog)
		}
	}
	if censored, ok := prog["censored"].(float64); !ok || censored == 0 {
		t.Errorf("lockcounter measurement censored = %v, want > 0 (starved invocations in flight)", prog["censored"])
	}
	// A malformed model spec is rejected at submit time, not at run time.
	code, _ = doJSON(t, "POST", ts.URL+"/jobs", `{"kind":"measure","measure":{"meta":{"workload":"unicons","n":2,"quantum":2},"sched_model":"markov:warp=1"}}`)
	if code != http.StatusBadRequest {
		t.Fatalf("bad model spec accepted: code %d, want 400", code)
	}
}

func TestBenchEndpoints(t *testing.T) {
	svc, ts := newFarm(t, service.Config{})
	defer svc.Stop()
	code, _ := doJSON(t, "POST", ts.URL+"/bench", `{"schema":3,"run":1}`)
	if code != http.StatusCreated {
		t.Fatalf("bench append: code %d", code)
	}
	code, _ = doJSON(t, "POST", ts.URL+"/bench", `{broken`)
	if code != http.StatusBadRequest {
		t.Fatalf("invalid bench entry: code %d, want 400", code)
	}
	resp, err := http.Get(ts.URL + "/bench")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	h, err := bench.ParseHistory(data)
	if err != nil {
		t.Fatal(err)
	}
	var latest struct {
		Run int `json:"run"`
	}
	if len(h.History) != 1 {
		t.Fatalf("bench history has %d entries, want 1", len(h.History))
	}
	if err := json.Unmarshal(h.Latest, &latest); err != nil || latest.Run != 1 {
		t.Fatalf("bench latest %s (err %v)", h.Latest, err)
	}
}

func TestHealthzAndShutdownRejection(t *testing.T) {
	svc, ts := newFarm(t, service.Config{})
	code, health := doJSON(t, "GET", ts.URL+"/healthz", "")
	if code != http.StatusOK || health["ok"] != true {
		t.Fatalf("healthz: %d %v", code, health)
	}
	svc.Stop()
	code, _ = doJSON(t, "POST", ts.URL+"/jobs", uniconsAll)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit after Stop: code %d, want 503", code)
	}
}
