// Package service is the checker farm: a long-running job service over
// the shared exploration engine. Jobs are serializable workload-registry
// references (internal/service/jobspec) submitted over REST
// (internal/service/http.go), queued in a bounded queue, and executed
// by a multi-tenant scheduler that splits a global worker budget fairly
// across concurrently running jobs. Everything a job does is persisted
// in an internal/store artifact store — spec, status, per-leg progress,
// campaign state, content-addressed repro bundles — so the server can
// be killed at any moment and resume every interrupted job on the next
// boot.
//
// Durability model. Soak jobs ride internal/campaign's WAL +
// checkpoint machinery unchanged. Check jobs (the tree explorers under
// ReductionNone) run in legs: each leg explores at most Config
// .LegSchedules schedules, exports the unexplored frontier, and the
// cumulative result + frontier are persisted atomically before the
// next leg starts. A crash therefore loses at most one leg, and the
// lost leg replays identically on resume because a frontier pins the
// exact unexplored subtrees (the PR-7 resume-equivalence property:
// interrupted + resumed legs cover exactly the uninterrupted schedule
// set). Fuzz and reduced explorations have no frontier; they run as
// one unit and restart from scratch when interrupted.
//
// Scheduling model. The service never grows the engine's worker count:
// Config.GlobalWorkers is the whole budget, each running job gets
// max(1, GlobalWorkers/MaxActiveJobs) workers capped by the job's own
// Parallelism, and at most MaxActiveJobs jobs run at once — so N
// concurrent tenants share the machine instead of oversubscribing it.
// Timing (queues, goroutines, HTTP) decides only WHEN a job runs;
// WHAT a run computes stays a deterministic function of the job spec,
// which is why the service sits outside the engine's replay paths.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/campaign"
	"repro/internal/check"
	"repro/internal/service/jobspec"
	"repro/internal/store"
)

// Job states. queued and running are live; interrupted means the
// server stopped (or died) while the job ran and a future boot will
// resume it; cancelled, done, failed, and error are terminal. failed
// means the job completed and found violations — an infrastructure
// problem is error, never failed.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateInterrupted = "interrupted"
	StateCancelled   = "cancelled"
	StateDone        = "done"
	StateFailed      = "failed"
	StateError       = "error"
)

// terminal reports whether a job state is final (no resume on boot).
func terminal(state string) bool {
	switch state {
	case StateCancelled, StateDone, StateFailed, StateError:
		return true
	}
	return false
}

// Status is a job's externally visible record, persisted as
// status.json and served by GET /jobs/{id}.
type Status struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"`
	// Detail is a one-line human summary (the jobspec description, then
	// the terminal verdict).
	Detail string `json:"detail,omitempty"`
	// Workers is the worker allocation the scheduler granted.
	Workers int `json:"workers,omitempty"`
	// Resumes counts boots that re-enqueued this job.
	Resumes int `json:"resumes,omitempty"`
	// Legs counts persisted exploration legs (durable check jobs).
	Legs int `json:"legs,omitempty"`
	// Schedules is the cumulative executed-schedule count (check jobs).
	Schedules int `json:"schedules,omitempty"`
	// Runs/Crashes/TimedOut are campaign counters (soak jobs).
	Runs     int64 `json:"runs,omitempty"`
	Crashes  int64 `json:"crashes,omitempty"`
	TimedOut int64 `json:"timed_out,omitempty"`
	// Violations is the total violations found so far.
	Violations int `json:"violations,omitempty"`
	// Artifacts are content-store keys of this job's repro bundles
	// (GET /artifacts/{key}).
	Artifacts []string `json:"artifacts,omitempty"`
	// Error is the infrastructure error that ended the job (state
	// error).
	Error string `json:"error,omitempty"`
}

// ViolationRecord is the persisted form of one check-job violation
// (progress.json); Err is a string because the engine's error values
// do not round-trip JSON.
type ViolationRecord struct {
	Schedule  string `json:"schedule"`
	Err       string `json:"err"`
	Decisions []int  `json:"decisions,omitempty"`
	// Artifact is the content-store key of the violation's bundle.
	Artifact string `json:"artifact,omitempty"`
}

// checkProgress is a durable check job's cumulative result, persisted
// after every leg. Frontier nil + Done means the exploration ran to
// completion; Frontier non-nil means resume from it.
type checkProgress struct {
	Legs            int               `json:"legs"`
	Schedules       int               `json:"schedules"`
	ViolationsTotal int               `json:"violations_total"`
	Aliased         int               `json:"aliased,omitempty"`
	StepLimited     int               `json:"step_limited,omitempty"`
	TimedOutRuns    int               `json:"timed_out_runs,omitempty"`
	Violations      []ViolationRecord `json:"violations,omitempty"`
	Degradations    []string          `json:"degradations,omitempty"`
	Done            bool              `json:"done"`
	Frontier        *check.Frontier   `json:"frontier,omitempty"`
}

// Config parameterizes a Service.
type Config struct {
	// Store is the persistent artifact store (required).
	Store *store.Store
	// GlobalWorkers is the total exploration-worker budget shared by
	// all running jobs (0 = all CPUs).
	GlobalWorkers int
	// MaxActiveJobs caps concurrently running jobs (0 = 2).
	MaxActiveJobs int
	// QueueDepth bounds the submit queue; a full queue rejects new jobs
	// (HTTP 503) instead of buffering without bound (0 = 16).
	QueueDepth int
	// LegSchedules is the per-leg schedule cap for durable check jobs —
	// the durability granularity: a crash loses at most this many
	// schedules of progress (0 = 2000).
	LegSchedules int
	// Log, if non-nil, receives server-side operational messages.
	Log func(string)
}

func (c Config) globalWorkers() int {
	if c.GlobalWorkers <= 0 {
		return runtime.NumCPU()
	}
	return c.GlobalWorkers
}

func (c Config) maxActiveJobs() int {
	if c.MaxActiveJobs <= 0 {
		return 2
	}
	return c.MaxActiveJobs
}

func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 16
	}
	return c.QueueDepth
}

func (c Config) legSchedules() int {
	if c.LegSchedules <= 0 {
		return 2000
	}
	return c.LegSchedules
}

// fairShare is the per-job worker allocation: an equal split of the
// global budget across the maximum number of concurrently running
// jobs, never below one, never above the job's own Parallelism cap.
// The split is fixed at admission (not rebalanced mid-run) so a job's
// execution, given its spec, does not depend on what its neighbors do.
func (c Config) fairShare(jobCap int) int {
	share := c.globalWorkers() / c.maxActiveJobs()
	if share < 1 {
		share = 1
	}
	if jobCap > 0 && jobCap < share {
		share = jobCap
	}
	return share
}

// job is the in-memory half of one job: live status plus the control
// channels the scheduler uses to run, cancel, and observe it.
type job struct {
	id     string
	spec   *jobspec.Spec
	events *eventLog

	cancelOnce sync.Once
	cancelled  chan struct{} // closed by DELETE /jobs/{id}

	mu     sync.Mutex
	status Status
}

// setState transitions the job's state under its lock and returns the
// updated snapshot.
func (j *job) setState(state, detail string) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status.State = state
	if detail != "" {
		j.status.Detail = detail
	}
	return j.status
}

// snapshot returns the job's current status.
func (j *job) snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// cancel requests cancellation (idempotent).
func (j *job) cancel() {
	j.cancelOnce.Do(func() { close(j.cancelled) })
}

func (j *job) isCancelled() bool {
	select {
	case <-j.cancelled:
		return true
	default:
		return false
	}
}

// Errors the submission path returns; the HTTP layer maps them to
// status codes.
var (
	// ErrQueueFull rejects a submission when the bounded queue is at
	// capacity (HTTP 503).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrStopping rejects a submission during shutdown (HTTP 503).
	ErrStopping = errors.New("service: shutting down")
	// ErrUnknownJob names a job ID with no store entry (HTTP 404).
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrTerminal rejects cancelling an already-terminal job (HTTP 409).
	ErrTerminal = errors.New("service: job already terminal")
)

// Service is the running job server: a bounded queue, a dispatcher, a
// slot-limited pool of job runners, and the store they all persist
// into.
type Service struct {
	cfg Config
	st  *store.Store

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*job
	jobs     map[string]*job
	stopping bool

	slots    chan struct{} // MaxActiveJobs tokens
	shutdown chan struct{} // closed by Stop/Kill: interrupt running jobs
	killed   chan struct{} // closed by Kill: suppress all further store writes
	wg       sync.WaitGroup
}

// New opens a service over st's contents: every persisted job is
// loaded, and jobs that were queued, running, or interrupted when the
// previous process died are re-enqueued — running/interrupted ones
// with Resumes bumped — so a kill at any point costs at most one
// durability interval of work. Call Serve… via Handler and stop with
// Stop (graceful) — Kill is the crash-simulation hook for tests.
func New(cfg Config) (*Service, error) {
	if cfg.Store == nil {
		return nil, errors.New("service: Config.Store is required")
	}
	s := &Service{
		cfg:      cfg,
		st:       cfg.Store,
		jobs:     map[string]*job{},
		slots:    make(chan struct{}, cfg.maxActiveJobs()),
		shutdown: make(chan struct{}),
		killed:   make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.loadJobs(); err != nil {
		return nil, err
	}
	s.wg.Add(1)
	//repro:allow service the dispatcher decides when queued jobs start, never what they compute
	go s.dispatch()
	return s, nil
}

// loadJobs scans the store and rebuilds the in-memory job table,
// re-enqueueing every non-terminal job.
func (s *Service) loadJobs() error {
	ids, err := s.st.JobIDs()
	if err != nil {
		return err
	}
	for _, id := range ids {
		j, err := s.loadJob(id)
		if err != nil {
			return err
		}
		s.jobs[id] = j
		st := j.snapshot()
		if terminal(st.State) {
			j.events.close()
			continue
		}
		if st.State != StateQueued {
			j.mu.Lock()
			j.status.Resumes++
			j.status.State = StateQueued
			j.mu.Unlock()
			s.logf("resuming %s (kind %s, resume #%d)", id, st.Kind, st.Resumes+1)
		}
		s.persist(j)
		j.events.append("state", "queued (boot)")
		s.queue = append(s.queue, j)
	}
	return nil
}

// loadJob reads one job's spec and status back from the store.
func (s *Service) loadJob(id string) (*job, error) {
	specData, err := s.st.ReadJobFile(id, "spec.json")
	if err != nil {
		return nil, err
	}
	if specData == nil {
		return nil, fmt.Errorf("service: job %s has no spec.json", id)
	}
	spec, err := jobspec.Parse(specData)
	if err != nil {
		return nil, fmt.Errorf("service: job %s: %w", id, err)
	}
	j := &job{id: id, spec: spec, events: newEventLog(), cancelled: make(chan struct{})}
	statusData, err := s.st.ReadJobFile(id, "status.json")
	if err != nil {
		return nil, err
	}
	if statusData == nil {
		j.status = Status{ID: id, Kind: spec.Kind, State: StateQueued, Detail: spec.Describe()}
	} else if err := json.Unmarshal(statusData, &j.status); err != nil {
		return nil, fmt.Errorf("service: job %s: decode status: %w", id, err)
	}
	return j, nil
}

// Submit validates and enqueues a new job, returning its ID.
func (s *Service) Submit(spec *jobspec.Spec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	specData, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return "", fmt.Errorf("service: encode spec: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopping {
		return "", ErrStopping
	}
	if len(s.queue) >= s.cfg.queueDepth() {
		return "", ErrQueueFull
	}
	id, err := s.st.CreateJob()
	if err != nil {
		return "", err
	}
	j := &job{id: id, spec: spec, events: newEventLog(), cancelled: make(chan struct{})}
	j.status = Status{ID: id, Kind: spec.Kind, State: StateQueued, Detail: spec.Describe()}
	if err := s.st.WriteJobFile(id, "spec.json", append(specData, '\n')); err != nil {
		return "", err
	}
	s.persist(j)
	s.jobs[id] = j
	s.queue = append(s.queue, j)
	j.events.append("state", "queued")
	s.cond.Signal()
	return id, nil
}

// Job returns a job's status by ID.
func (s *Service) Job(id string) (Status, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return Status{}, ErrUnknownJob
	}
	return j.snapshot(), nil
}

// Jobs returns every job's status, ordered by ID.
func (s *Service) Jobs() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.jobs[id].snapshot())
	}
	return out
}

// Cancel requests cancellation of a queued or running job. A queued
// job is removed from the queue and goes terminal immediately; a
// running job is interrupted at its next durability boundary and then
// goes terminal with its progress checkpointed.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return ErrUnknownJob
	}
	st := j.snapshot()
	if terminal(st.State) {
		s.mu.Unlock()
		return ErrTerminal
	}
	if st.State == StateQueued {
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
	}
	s.mu.Unlock()
	j.cancel()
	if st.State == StateQueued {
		s.finish(j, StateCancelled, "cancelled while queued", nil)
	}
	return nil
}

// Events returns a job's event log for streaming.
func (s *Service) Events(id string) (*eventLog, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return nil, ErrUnknownJob
	}
	return j.events, nil
}

// Stop shuts the service down gracefully: no new jobs are accepted,
// queued jobs stay queued (persisted, resumed next boot), and every
// running job is interrupted at its next durability boundary and
// checkpointed as interrupted.
func (s *Service) Stop() {
	s.mu.Lock()
	alreadyStopping := s.stopping
	s.stopping = true
	s.cond.Broadcast()
	s.mu.Unlock()
	if !alreadyStopping {
		close(s.shutdown)
	}
	s.wg.Wait()
}

// Kill simulates a hard kill (SIGKILL) for tests: running jobs are
// interrupted AND every subsequent store write is suppressed, so the
// on-disk state after Kill is exactly the state some real kill could
// have left — the most recent atomically persisted checkpoint of every
// job, with no graceful finalization on top.
func (s *Service) Kill() {
	s.mu.Lock()
	alreadyStopping := s.stopping
	s.stopping = true
	select {
	case <-s.killed:
	default:
		close(s.killed)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if !alreadyStopping {
		close(s.shutdown)
	}
	s.wg.Wait()
}

func (s *Service) isKilled() bool {
	select {
	case <-s.killed:
		return true
	default:
		return false
	}
}

// stopRequested reports whether graceful shutdown has begun.
func (s *Service) stopRequested() bool {
	select {
	case <-s.shutdown:
		return true
	default:
		return false
	}
}

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log(fmt.Sprintf(format, args...))
	}
}

// persist writes a job's status.json — unless a simulated kill is in
// effect, in which case the disk keeps whatever was last persisted.
func (s *Service) persist(j *job) {
	if s.isKilled() {
		return
	}
	st := j.snapshot()
	data, err := json.MarshalIndent(&st, "", "  ")
	if err != nil {
		s.logf("encode status %s: %v", j.id, err)
		return
	}
	if err := s.st.WriteJobFile(j.id, "status.json", append(data, '\n')); err != nil {
		s.logf("persist %s: %v", j.id, err)
	}
}

// finish drives a job to a terminal (or interrupted) state, persists
// it, and closes its event stream.
func (s *Service) finish(j *job, state, detail string, err error) {
	j.mu.Lock()
	j.status.State = state
	if detail != "" {
		j.status.Detail = detail
	}
	if err != nil {
		j.status.Error = err.Error()
	}
	j.mu.Unlock()
	s.persist(j)
	j.events.append("state", state+": "+detail)
	if terminal(state) || state == StateInterrupted {
		j.events.close()
	}
}

// dispatch moves jobs from the queue into runner goroutines as slots
// free up. It exits on shutdown; queued jobs stay queued on disk.
func (s *Service) dispatch() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.stopping {
			s.cond.Wait()
		}
		if s.stopping {
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		select {
		case s.slots <- struct{}{}:
		case <-s.shutdown:
			// Shutdown while waiting for a slot: j stays queued on disk
			// and will be re-enqueued next boot.
			return
		}
		s.wg.Add(1)
		//repro:allow service job runners decide when work executes; each job's output is a function of its spec
		go func(j *job) {
			defer s.wg.Done()
			defer func() { <-s.slots }()
			s.run(j)
		}(j)
	}
}

// run executes one job start to finish (or to interruption).
func (s *Service) run(j *job) {
	if j.isCancelled() {
		s.finish(j, StateCancelled, "cancelled before start", nil)
		return
	}
	var workers int
	switch j.spec.Kind {
	case jobspec.KindCheck:
		workers = s.cfg.fairShare(j.spec.Check.Parallelism)
	case jobspec.KindLint:
		workers = s.cfg.fairShare(j.spec.Lint.Parallelism)
	case jobspec.KindMeasure:
		workers = s.cfg.fairShare(j.spec.Measure.Parallelism)
	default:
		workers = s.cfg.fairShare(j.spec.Soak.Parallelism)
	}
	j.mu.Lock()
	j.status.State = StateRunning
	j.status.Workers = workers
	j.mu.Unlock()
	s.persist(j)
	j.events.append("state", fmt.Sprintf("running with %d workers", workers))

	switch j.spec.Kind {
	case jobspec.KindCheck:
		s.runCheck(j, workers)
	case jobspec.KindLint:
		s.runLint(j, workers)
	case jobspec.KindMeasure:
		s.runMeasure(j, workers)
	default:
		s.runSoak(j, workers)
	}
}

// interruptionState maps how a run ended early to the job state it
// should persist: explicit cancel beats shutdown.
func (s *Service) interruptionState(j *job) (string, string) {
	if j.isCancelled() {
		return StateCancelled, "cancelled; progress checkpointed"
	}
	return StateInterrupted, "interrupted by shutdown; will resume on next boot"
}

// watchCancel returns a context cancelled when the job is cancelled,
// the service shuts down, or the returned stop func runs.
func (s *Service) watchCancel(j *job) (context.Context, func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	//repro:allow service watches for cancel/shutdown to stop a run at a schedule boundary; affects when a job stops, not its per-schedule results
	go func() {
		select {
		case <-j.cancelled:
		case <-s.shutdown:
		case <-done:
		}
		cancel()
	}()
	return ctx, func() { close(done); cancel() }
}

// runCheck executes a check job. Durable explorations run in legs (see
// the package comment); fuzz and reduced explorations run as one unit.
func (s *Service) runCheck(j *job, workers int) {
	spec := j.spec.Check
	build, err := spec.Builder()
	if err != nil {
		s.finish(j, StateError, "builder", err)
		return
	}
	opts, err := spec.Options()
	if err != nil {
		s.finish(j, StateError, "options", err)
		return
	}
	opts.Parallelism = workers
	opts.CollectDecisions = true
	opts.Progress = func(info check.ProgressInfo) {
		j.events.append("progress", fmt.Sprintf("%d schedules, %d violations", info.Schedules, info.Violations))
	}
	opts.ProgressEvery = 500

	if !spec.Durable() {
		s.runCheckOneShot(j, build, opts)
		return
	}
	s.runCheckLegs(j, build, opts)
}

// runCheckOneShot runs a non-durable exploration (fuzz or reduced):
// interruption discards progress and the job restarts from scratch on
// resume.
func (s *Service) runCheckOneShot(j *job, build check.Builder, opts check.Options) {
	ctx, stop := s.watchCancel(j)
	defer stop()
	opts.Context = ctx
	res := j.spec.Check.Run(build, opts)
	prog := &checkProgress{}
	s.foldLeg(j, prog, res)
	if res.Interrupted {
		state, detail := s.interruptionState(j)
		if state == StateInterrupted {
			// Nothing durable to keep: next boot restarts the job.
			s.finish(j, StateInterrupted, "interrupted by shutdown; fuzz/reduced jobs restart from scratch", nil)
			return
		}
		s.finish(j, state, detail, nil)
		return
	}
	s.finishCheck(j, prog)
}

// runCheckLegs runs a durable exploration as persisted legs.
func (s *Service) runCheckLegs(j *job, build check.Builder, opts check.Options) {
	spec := j.spec.Check
	prog := &checkProgress{}
	if data, err := s.st.ReadJobFile(j.id, "progress.json"); err != nil {
		s.finish(j, StateError, "read progress", err)
		return
	} else if data != nil {
		if err := json.Unmarshal(data, prog); err != nil {
			s.finish(j, StateError, "decode progress", err)
			return
		}
	}
	if prog.Done {
		s.finishCheck(j, prog)
		return
	}
	if prog.Legs > 0 {
		j.events.append("leg", fmt.Sprintf("resuming at leg %d: %d schedules done, %d frontier items",
			prog.Legs, prog.Schedules, frontierLen(prog.Frontier)))
	}
	opts.ExportFrontier = true
	for {
		legOpts := opts
		legOpts.SeedFrontier = prog.Frontier
		legOpts.MaxSchedules = s.cfg.legSchedules()
		if spec.MaxSchedules > 0 {
			remaining := spec.MaxSchedules - prog.Schedules
			if remaining <= 0 {
				prog.Done = true
				prog.Frontier = nil
				s.persistProgress(j, prog)
				s.finishCheck(j, prog)
				return
			}
			if remaining < legOpts.MaxSchedules {
				legOpts.MaxSchedules = remaining
			}
		}
		ctx, stopWatch := s.watchCancel(j)
		legOpts.Context = ctx
		res := spec.Run(build, legOpts)
		stopWatch()
		s.foldLeg(j, prog, res)
		interrupted := res.Interrupted
		exhausted := res.Frontier == nil || res.Frontier.Empty()
		capped := spec.MaxSchedules > 0 && prog.Schedules >= spec.MaxSchedules
		stopFirst := spec.StopAtFirst && prog.ViolationsTotal > 0
		if exhausted || capped || stopFirst {
			prog.Done = true
			prog.Frontier = nil
		}
		s.persistProgress(j, prog)
		j.events.append("leg", fmt.Sprintf("leg %d: %d schedules total, %d violations, %d frontier items",
			prog.Legs, prog.Schedules, prog.ViolationsTotal, frontierLen(prog.Frontier)))
		if prog.Done {
			s.finishCheck(j, prog)
			return
		}
		if interrupted {
			state, detail := s.interruptionState(j)
			s.finish(j, state, detail, nil)
			return
		}
	}
}

func frontierLen(f *check.Frontier) int {
	if f == nil {
		return 0
	}
	return len(f.Items)
}

// foldLeg merges one leg's Result into the cumulative progress,
// importing violation bundles into the content store as it goes, and
// mirrors the counters into the job status.
func (s *Service) foldLeg(j *job, prog *checkProgress, res *check.Result) {
	prog.Legs++
	prog.Schedules += res.Schedules
	prog.ViolationsTotal += res.ViolationsTotal
	prog.Aliased += res.Aliased
	prog.StepLimited += res.StepLimited
	prog.TimedOutRuns += res.TimedOutRuns
	prog.Degradations = append(prog.Degradations, res.Degradations...)
	prog.Frontier = res.Frontier
	for i := range res.Violations {
		v := &res.Violations[i]
		rec := ViolationRecord{Schedule: v.Schedule, Decisions: v.Decisions}
		if v.Err != nil {
			rec.Err = v.Err.Error()
		}
		if v.Artifact != nil && !s.isKilled() {
			key, err := s.st.PutArtifact(v.Artifact)
			if err != nil {
				s.logf("%s: store artifact: %v", j.id, err)
			} else {
				rec.Artifact = key
				j.events.append("artifact", key)
			}
		}
		prog.Violations = append(prog.Violations, rec)
		j.events.append("violation", rec.Schedule+": "+rec.Err)
	}
	j.mu.Lock()
	j.status.Legs = prog.Legs
	j.status.Schedules = prog.Schedules
	j.status.Violations = prog.ViolationsTotal
	j.status.Artifacts = artifactKeys(prog.Violations)
	j.mu.Unlock()
}

func artifactKeys(viols []ViolationRecord) []string {
	var keys []string
	seen := map[string]bool{}
	for _, v := range viols {
		if v.Artifact != "" && !seen[v.Artifact] {
			seen[v.Artifact] = true
			keys = append(keys, v.Artifact)
		}
	}
	return keys
}

// persistProgress writes progress.json (suppressed after Kill).
func (s *Service) persistProgress(j *job, prog *checkProgress) {
	if s.isKilled() {
		return
	}
	data, err := json.MarshalIndent(prog, "", "  ")
	if err != nil {
		s.logf("encode progress %s: %v", j.id, err)
		return
	}
	if err := s.st.WriteJobFile(j.id, "progress.json", append(data, '\n')); err != nil {
		s.logf("persist progress %s: %v", j.id, err)
	}
	s.persist(j)
}

// finishCheck maps a completed check job's cumulative result to its
// terminal state.
func (s *Service) finishCheck(j *job, prog *checkProgress) {
	if prog.ViolationsTotal > 0 {
		s.finish(j, StateFailed,
			fmt.Sprintf("%d violations in %d schedules (%d legs)", prog.ViolationsTotal, prog.Schedules, prog.Legs), nil)
		return
	}
	s.finish(j, StateDone,
		fmt.Sprintf("no violations in %d schedules (%d legs)", prog.Schedules, prog.Legs), nil)
}

// runSoak executes a soak job on internal/campaign's durable runner:
// the campaign's own WAL/checkpoint machinery provides the durability,
// the service just points it at the job's state directory and imports
// the resulting bundles.
func (s *Service) runSoak(j *job, workers int) {
	spec := j.spec.Soak
	stateDir, err := s.st.StateDir(j.id)
	if err != nil {
		s.finish(j, StateError, "state dir", err)
		return
	}
	cfg := spec.Config()
	cfg.Parallel = workers
	cfg.StateDir = stateDir
	cfg.Log = func(msg string) { j.events.append("log", msg) }
	cfg.Progress = func(info campaign.ProgressInfo) {
		j.events.append("progress", fmt.Sprintf("%d runs, %d violations, %d crashes", info.Runs, info.Violations, info.Crashes))
		j.mu.Lock()
		j.status.Runs = info.Runs
		j.status.Violations = info.Violations
		j.status.Crashes = info.Crashes
		j.status.TimedOut = info.TimedOut
		j.mu.Unlock()
	}
	stop := make(chan struct{})
	stopped := make(chan struct{})
	//repro:allow service relays cancel/shutdown into the campaign's graceful-stop channel; stop timing never changes run outcomes
	go func() {
		select {
		case <-j.cancelled:
			close(stop)
		case <-s.shutdown:
			close(stop)
		case <-stopped:
		}
	}()
	cfg.Stop = stop
	res, err := campaign.Run(cfg)
	close(stopped)
	if err != nil {
		s.finish(j, StateError, "campaign", err)
		return
	}
	state := res.State
	var keys []string
	for i := range state.Violations {
		v := &state.Violations[i]
		if v.Artifact == "" || s.isKilled() {
			continue
		}
		key, err := s.st.ImportArtifact(v.Artifact)
		if err != nil {
			s.logf("%s: import artifact %s: %v", j.id, v.Artifact, err)
			continue
		}
		keys = append(keys, key)
		j.events.append("artifact", key)
	}
	j.mu.Lock()
	j.status.Runs = state.Runs
	j.status.Crashes = state.Crashes
	j.status.TimedOut = state.TimedOut
	j.status.Violations = len(state.Violations)
	j.status.Artifacts = keys
	j.mu.Unlock()
	switch {
	case res.Failed() && !spec.KeepGoing:
		s.finish(j, StateFailed,
			fmt.Sprintf("violation at run %d of %d completed", state.Violations[0].Idx, state.Runs), nil)
	case j.isCancelled():
		s.finish(j, StateCancelled, "cancelled; progress checkpointed", nil)
	case res.Interrupted && s.stopRequested():
		s.finish(j, StateInterrupted, "interrupted by shutdown; will resume on next boot", nil)
	case len(state.Violations) > 0:
		s.finish(j, StateFailed,
			fmt.Sprintf("%d violations in %d runs", len(state.Violations), state.Runs), nil)
	default:
		s.finish(j, StateDone,
			fmt.Sprintf("%d runs clean, %d crashes injected", state.Runs, state.Crashes), nil)
	}
}

// runLint executes a lint job: one reprolint driver run over the
// server's own source tree. The run is a single non-durable unit (the
// driver's incremental cache, shared by every lint job under the
// store's reprolint-cache directory, makes a post-crash re-run cheap
// anyway); findings map to StateFailed the same way violations do, and
// the SARIF log plus the derived bounds report are stored as the job's
// artifacts — index 0 and 1 — so GET /jobs/{id}/artifacts/{n} serves
// them to CI and code scanners.
func (s *Service) runLint(j *job, workers int) {
	spec := j.spec.Lint
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		s.finish(j, StateError, "module root", err)
		return
	}
	res, err := analysis.RunDriver(analysis.DriverOptions{
		Root:        root,
		Patterns:    spec.ResolvedPatterns(),
		Tests:       !spec.NoTests,
		Cache:       true,
		CacheDir:    filepath.Join(s.st.Root(), "reprolint-cache"),
		Parallelism: workers,
	})
	if err != nil {
		s.finish(j, StateError, "reprolint", err)
		return
	}
	if j.isCancelled() {
		s.finish(j, StateCancelled, "cancelled; lint runs as one unit, results discarded", nil)
		return
	}
	var sarif, bounds bytes.Buffer
	if err := analysis.WriteDiagnostics(&sarif, "sarif", res.Diags, root); err != nil {
		s.finish(j, StateError, "encode sarif", err)
		return
	}
	if err := analysis.WriteBoundsReport(&bounds, res.Bounds); err != nil {
		s.finish(j, StateError, "encode bounds report", err)
		return
	}
	var keys []string
	for _, blob := range [][]byte{sarif.Bytes(), bounds.Bytes()} {
		if s.isKilled() {
			break
		}
		key, err := s.st.PutRawArtifact(blob)
		if err != nil {
			s.finish(j, StateError, "store artifact", err)
			return
		}
		keys = append(keys, key)
		j.events.append("artifact", key)
	}
	j.mu.Lock()
	j.status.Violations = len(res.Diags)
	j.status.Artifacts = keys
	j.mu.Unlock()
	j.events.append("progress", fmt.Sprintf("%d packages analyzed (%d dirs incl. deps, %d cache hits), %d findings",
		res.Packages, res.Analyzed, res.CacheHits, len(res.Diags)))
	if len(res.Diags) > 0 {
		s.finish(j, StateFailed,
			fmt.Sprintf("%d findings in %d packages", len(res.Diags), res.Packages), nil)
		return
	}
	s.finish(j, StateDone,
		fmt.Sprintf("clean: %d packages, %d bounded operations derived", res.Packages, len(res.Bounds.Ops)), nil)
}

// runMeasure executes a measurement job: a Measure-mode fuzz campaign
// under the spec's scheduler model, producing a progress-distribution
// report (check.ProgressStats) stored as the job's single artifact. A
// measurement is an observation, not a pass/fail check: runs exceeding
// the declared bound are counted in Violations but leave the job Done
// — a negative control exceeding its bound is the measurement working.
// Interruption discards progress (the distribution is only meaningful
// over the full replay count) and the job restarts on resume, like a
// non-durable check.
func (s *Service) runMeasure(j *job, workers int) {
	spec := j.spec.Measure
	build, err := spec.Builder()
	if err != nil {
		s.finish(j, StateError, "builder", err)
		return
	}
	opts, err := spec.Options()
	if err != nil {
		s.finish(j, StateError, "options", err)
		return
	}
	opts.Parallelism = workers
	opts.Progress = func(info check.ProgressInfo) {
		j.events.append("progress", fmt.Sprintf("%d replays, %d over bound", info.Schedules, info.Violations))
	}
	opts.ProgressEvery = 500
	ctx, stop := s.watchCancel(j)
	defer stop()
	opts.Context = ctx

	res := spec.Run(build, opts)
	if res.Interrupted {
		state, detail := s.interruptionState(j)
		if state == StateInterrupted {
			detail = "interrupted by shutdown; measurement jobs restart from scratch"
		}
		s.finish(j, state, detail, nil)
		return
	}
	blob, err := json.MarshalIndent(res.Progress, "", "  ")
	if err != nil {
		s.finish(j, StateError, "encode progress report", err)
		return
	}
	var keys []string
	if !s.isKilled() {
		key, err := s.st.PutRawArtifact(append(blob, '\n'))
		if err != nil {
			s.finish(j, StateError, "store artifact", err)
			return
		}
		keys = append(keys, key)
		j.events.append("artifact", key)
	}
	j.mu.Lock()
	j.status.Violations = res.ViolationsTotal
	j.status.Artifacts = keys
	j.mu.Unlock()
	p := res.Progress
	s.finish(j, StateDone,
		fmt.Sprintf("%d replays under %s: p50=%d p99=%d max=%d (%d censored, %d over bound)",
			res.Schedules, spec.ResolvedModel(), p.P50, p.P99, p.Max, p.Censored, res.ViolationsTotal), nil)
}
