package service_test

import (
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/service"
	"repro/internal/service/jobspec"
	"repro/internal/store"
)

// TestKillRestartEquivalence is the durability contract: a job hard-killed
// mid-exploration and resumed on the next boot must report exactly the
// totals of an uninterrupted run. unicons at N=3, Q=2 under a wait-free
// bound of 6 makes every schedule a violation, so both the schedule count
// and the violation count are sensitive to lost or replayed legs.
func TestKillRestartEquivalence(t *testing.T) {
	spec := &jobspec.Spec{Kind: jobspec.KindCheck, Check: &jobspec.Check{
		Meta:         artifact.Meta{Workload: "unicons", N: 3, V: 1, Quantum: 2, MaxSteps: 1 << 18, WaitFreeBound: 6},
		Mode:         jobspec.ModeAll,
		MaxSchedules: 30000,
	}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}

	// Uninterrupted reference, straight through the engine.
	build, err := spec.Check.Builder()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := spec.Check.Options()
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 1
	ref := spec.Check.Run(build, opts)
	if ref.Schedules != 30000 || ref.ViolationsTotal == 0 {
		t.Fatalf("reference run: %d schedules, %d violations — config no longer stresses the bound",
			ref.Schedules, ref.ViolationsTotal)
	}

	root := t.TempDir()
	st, err := store.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	cfg := service.Config{Store: st, GlobalWorkers: 1, MaxActiveJobs: 1, LegSchedules: 250}
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Let a few legs checkpoint, then pull the plug. Kill suppresses all
	// further persistence, so whatever leg is in flight is simply lost —
	// the same observable state as a SIGKILL.
	waitJob(t, svc, id, "a few legs", func(s service.Status) bool { return s.Legs >= 3 })
	svc.Kill()

	// Boot a fresh service over the same store; the interrupted job must
	// be requeued and run to completion.
	st2, err := store.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st2
	svc2, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Stop()
	final := waitJob(t, svc2, id, "terminal", isTerminal)

	if final.State != service.StateFailed {
		t.Fatalf("resumed job ended %s (%s), want failed", final.State, final.Error)
	}
	if final.Resumes != 1 {
		t.Fatalf("resumes = %d, want 1", final.Resumes)
	}
	if final.Schedules != ref.Schedules {
		t.Fatalf("resumed run explored %d schedules, uninterrupted run %d", final.Schedules, ref.Schedules)
	}
	if final.Violations != ref.ViolationsTotal {
		t.Fatalf("resumed run found %d violations, uninterrupted run %d", final.Violations, ref.ViolationsTotal)
	}
}

// TestConcurrentJobsShareWorkers verifies multi-tenancy: with two worker
// slots and two active-job slots, two submitted soaks must both be in
// StateRunning making forward progress at the same time, each holding its
// fair share (one worker) of the global pool.
func TestConcurrentJobsShareWorkers(t *testing.T) {
	svc, err := service.New(service.Config{GlobalWorkers: 2, MaxActiveJobs: 2, Store: openStore(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Stop()

	var ids []string
	for seed := int64(1); seed <= 2; seed++ {
		spec := &jobspec.Spec{Kind: jobspec.KindSoak, Soak: &jobspec.Soak{Runs: 0, Seed: seed}}
		id, err := svc.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		bothRunning := true
		for _, id := range ids {
			s, err := svc.Job(id)
			if err != nil {
				t.Fatal(err)
			}
			if s.State != service.StateRunning || s.Runs == 0 {
				bothRunning = false
			} else if s.Workers != 1 {
				t.Fatalf("job %s holds %d workers, fair share of 2/2 is 1", id, s.Workers)
			}
		}
		if bothRunning {
			break
		}
		if time.Now().After(deadline) {
			for _, id := range ids {
				s, _ := svc.Job(id)
				t.Logf("job %s: %+v", id, s)
			}
			t.Fatal("jobs never progressed concurrently")
		}
		time.Sleep(5 * time.Millisecond)
	}

	for _, id := range ids {
		if err := svc.Cancel(id); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		s := waitJob(t, svc, id, "cancelled", isTerminal)
		if s.State != service.StateCancelled {
			t.Fatalf("job %s ended %s, want cancelled", id, s.State)
		}
	}
}

func openStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}
