# Convenience targets for the hybridwf reproduction.

GO ?= go

.PHONY: all build vet lint lint-report test test-short test-race bench bench-json bench-gate measure-smoke examples experiments soak soak-resume-smoke server server-smoke clean

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet plus the repo's own reprolint suite, which
# machine-checks the atomic-statement model (atomicaccess, ctxescape,
# simonly, exhaustive), the artifact replay-determinism contract
# (determinism), and the wait-freedom discipline (waitfreebound,
# statementcharge) — including //repro:allow and //repro:bound marker
# validation. Incremental: results are cached under .reprolint-cache/
# keyed by content hashes, so warm runs re-check only what changed. The
# repo must lint clean; see DESIGN.md §9 and §13.
lint: vet
	$(GO) run ./cmd/reprolint ./...

# CI form of the lint: GitHub annotations to the log, then (from the
# now-warm cache) the SARIF log and derived bounds report for artifact
# upload.
lint-report:
	$(GO) run ./cmd/reprolint -format=github ./...
	$(GO) run ./cmd/reprolint -format=sarif -o reprolint.sarif -bounds bounds.json ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable throughput data point (schedules/sec sequential vs
# parallel, shrink candidate replays/sec); format in EXPERIMENTS.md.
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_explore.json

# Regression gate: re-time the plain and reduced explore legs and fail
# if either drops more than 25% below the committed BENCH_explore.json,
# the reduced cost ratio rises more than 25% above it, or the measured
# starvation gap falls more than 25% below it.
bench-gate:
	$(GO) run ./cmd/benchjson -gate

# Measurement smoke (EXPERIMENTS.md E9): the wait-free consensus must
# measure within its Theorem 1 bound at every percentile with no
# starved invocations, and the blocking negative control must
# measurably starve, under the same seeded stochastic scheduler. The
# distribution JSONs land in ./measure for CI artifact upload.
measure-smoke:
	mkdir -p measure
	$(GO) run ./cmd/checker -alg fig3 -n 3 -q 2 -measure -replays 500 \
		-sched-model uniform:seed=1 -measure-out measure/unicons.json -assert-max-within 8
	$(GO) run ./cmd/checker -alg lockcounter -n 2 -v 2 -q 2 -max-steps 2000 -measure -replays 500 \
		-sched-model uniform:seed=1 -measure-out measure/lockcounter.json -assert-max-above 100

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/realtime
	$(GO) run ./examples/multicore
	$(GO) run ./examples/adversary

experiments:
	$(GO) run ./cmd/tracer
	$(GO) run ./cmd/scaling
	$(GO) run ./cmd/quantumsweep -p 2 -m 3 -v 1 -seeds 150

soak:
	$(GO) run ./cmd/soak -seconds 20

# Durability smoke: SIGKILL a durable soak mid-campaign, resume it, and
# assert the final summary matches an uninterrupted run (DESIGN.md §11).
soak-resume-smoke:
	sh scripts/soak_resume_smoke.sh

# Run the checker service locally (DESIGN.md §12, README "Running the
# farm"): REST API on :8080, persistent store in ./farm.
server:
	$(GO) run ./cmd/server -store farm

# Service smoke: boot cmd/server, drive the REST API with curl (check
# job, violating soak, artifact fetch), SIGTERM, require a clean
# graceful shutdown.
server-smoke:
	sh scripts/server_smoke.sh

clean:
	$(GO) clean ./...
