# Convenience targets for the hybridwf reproduction.

GO ?= go

.PHONY: all build vet test test-short test-race bench bench-json examples experiments soak clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable throughput data point (schedules/sec sequential vs
# parallel, shrink candidate replays/sec); format in EXPERIMENTS.md.
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_explore.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/realtime
	$(GO) run ./examples/multicore
	$(GO) run ./examples/adversary

experiments:
	$(GO) run ./cmd/tracer
	$(GO) run ./cmd/scaling
	$(GO) run ./cmd/quantumsweep -p 2 -m 3 -v 1 -seeds 150

soak:
	$(GO) run ./cmd/soak -seconds 20

clean:
	$(GO) clean ./...
